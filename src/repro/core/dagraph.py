"""General function DAGs (fan-out / fan-in), beyond linear chains.

§4.1: "Users can also construct a function chain (or DAG)".  The Alexa
skill is really a tree (smarthome fans out to door and light); this
module models arbitrary DAGs over :mod:`networkx`, schedules them with
chain-style co-location, and executes them with the same direct-connect
FIFO discipline: a node fires once every predecessor's message has
arrived, then writes every successor's FIFO.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

import networkx as nx

from repro import config
from repro.errors import SchedulingError, WorkloadError
from repro.hardware.pu import ProcessingUnit, PuKind
from repro.xpu.capability import Permission
from repro.xpu.fifo import FifoEnd


@dataclass(frozen=True)
class DagEdge:
    """One edge with its payload size."""

    src: str
    dst: str
    payload_bytes: int = 1024


class FunctionDag:
    """A DAG of deployed functions."""

    def __init__(self, name: str, edges: Sequence[DagEdge]):
        if not edges:
            raise WorkloadError(f"DAG {name!r} needs at least one edge")
        self.name = name
        self.graph = nx.DiGraph()
        for edge in edges:
            self.graph.add_edge(edge.src, edge.dst, payload=edge.payload_bytes)
        if not nx.is_directed_acyclic_graph(self.graph):
            raise WorkloadError(f"DAG {name!r} contains a cycle")
        roots = [n for n in self.graph.nodes if self.graph.in_degree(n) == 0]
        if len(roots) != 1:
            raise WorkloadError(
                f"DAG {name!r} must have exactly one entry function, got {roots}"
            )
        self.entry = roots[0]
        self.sinks = [n for n in self.graph.nodes if self.graph.out_degree(n) == 0]

    @property
    def nodes(self) -> list[str]:
        """Function names in a topological order."""
        return list(nx.topological_sort(self.graph))

    @property
    def edges(self) -> list[DagEdge]:
        """All edges with payloads."""
        return [
            DagEdge(src, dst, data["payload"])
            for src, dst, data in self.graph.edges(data=True)
        ]

    def critical_path(self, exec_time_of) -> list[str]:
        """The execution-weighted longest path from entry to a sink."""
        longest: dict[str, tuple[float, list[str]]] = {}
        for node in self.nodes:
            best = (0.0, [])
            for pred in self.graph.predecessors(node):
                cost, path = longest[pred]
                if cost > best[0]:
                    best = (cost, path)
            longest[node] = (best[0] + exec_time_of(node), best[1] + [node])
        return max(longest.values(), key=lambda item: item[0])[1]


@dataclass
class DagRunResult:
    """Measured end-to-end run of one DAG request."""

    dag: str
    total_s: float
    exec_s: float
    #: Edge latency keyed by (src, dst).
    edge_latencies_s: dict[tuple[str, str], float]
    placements: dict[str, str]

    @property
    def total_ms(self) -> float:
        """End-to-end latency in milliseconds."""
        return self.total_s / config.MS


class DagGraphEngine:
    """Executes FunctionDags on a MoleculeRuntime."""

    def __init__(self, runtime):
        self.runtime = runtime
        self._uuid_seq = itertools.count(1)

    @property
    def sim(self):
        """The runtime's simulator."""
        return self.runtime.sim

    def co_locate(self, dag: FunctionDag, pu: ProcessingUnit) -> dict[str, ProcessingUnit]:
        """The default chain-aware policy: the whole DAG on one PU (§5)."""
        return {node: pu for node in dag.nodes}

    def prepare(self, dag: FunctionDag, placements: dict[str, ProcessingUnit]):
        """Generator: pre-boot one warm instance per node."""
        for node in dag.nodes:
            if node not in placements:
                raise SchedulingError(f"no placement for DAG node {node!r}")
            yield from self.runtime.invoker.invoke(node, pu=placements[node])

    def run(self, dag: FunctionDag, placements: dict[str, ProcessingUnit],
            request_bytes: int = 1024):
        """Generator: execute one request through the DAG.

        A node executes when all in-edges have delivered; sinks reply to
        the gateway; the request completes when every sink has replied.
        """
        runtime = self.runtime
        cluster = runtime.cluster
        host = runtime.machine.host_cpu
        host_shim = cluster.shim_on(host.pu_id)
        gateway_group = runtime.group

        instances = {}
        for node in dag.nodes:
            pu = placements[node]
            instance = runtime.invoker.pools[pu.pu_id].acquire(node)
            if instance is None:
                raise SchedulingError(
                    f"no warm instance of {node!r} on {pu.name}; prepare() first"
                )
            instances[node] = instance

        groups = {
            node: cluster.register_process(
                placements[node].pu_id, name=f"{dag.name}-{node}"
            )
            for node in dag.nodes
        }
        self_handles: dict[str, object] = {}
        out_handles: dict[str, list[tuple[str, int, object]]] = {n: [] for n in dag.nodes}
        response_uuid = f"dagresp-{next(self._uuid_seq)}"
        response_handle_box = {}

        def setup(sim):
            response_handle_box["h"] = yield from host_shim.xfifo_init(
                gateway_group, response_uuid, response_uuid
            )
            for node in dag.nodes:
                shim = cluster.shim_on(placements[node].pu_id)
                uuid = f"{dag.name}-{node}-{next(self._uuid_seq)}"
                self_handles[node] = yield from shim.xfifo_init(
                    groups[node], uuid, uuid
                )
            for edge in dag.edges:
                src_shim = cluster.shim_on(placements[edge.src].pu_id)
                dst_shim = cluster.shim_on(placements[edge.dst].pu_id)
                target = self_handles[edge.dst]
                yield from dst_shim.grant_cap(
                    groups[edge.dst], groups[edge.src].xpu_pid,
                    target.fifo.obj_id, Permission.WRITE,
                )
                handle = yield from src_shim.xfifo_connect(
                    groups[edge.src], target.fifo.global_uuid, FifoEnd.WRITE
                )
                out_handles[edge.src].append((edge.dst, edge.payload_bytes, handle))
            for sink in dag.sinks:
                shim = cluster.shim_on(placements[sink].pu_id)
                yield from host_shim.grant_cap(
                    gateway_group, groups[sink].xpu_pid,
                    response_handle_box["h"].fifo.obj_id, Permission.WRITE,
                )
                handle = yield from shim.xfifo_connect(
                    groups[sink], response_uuid, FifoEnd.WRITE
                )
                out_handles[sink].append(("__gateway__", 256, handle))
            # Gateway entry into the DAG's single root.
            entry_shim = cluster.shim_on(placements[dag.entry].pu_id)
            yield from entry_shim.grant_cap(
                groups[dag.entry], gateway_group.xpu_pid,
                self_handles[dag.entry].fifo.obj_id, Permission.WRITE,
            )
            handle = yield from host_shim.xfifo_connect(
                gateway_group, self_handles[dag.entry].fifo.global_uuid,
                FifoEnd.WRITE,
            )
            response_handle_box["entry"] = handle

        yield self.sim.spawn(setup(self.sim))

        t_sent: dict[tuple[str, str], float] = {}
        edge_latency: dict[tuple[str, str], float] = {}
        exec_total = [0.0]

        def node_proc(node):
            pu = placements[node]
            shim = cluster.shim_on(pu.pu_id)
            in_degree = max(1, dag.graph.in_degree(node))
            for _ in range(in_degree):
                yield from shim.xfifo_read(groups[node], self_handles[node])
            yield self.sim.timeout(self._msg_time(instances[node], pu))
            for pred in dag.graph.predecessors(node):
                edge_latency[(pred, node)] = self.sim.now - t_sent[(pred, node)]
            duration = instances[node].function.work.exec_time(pu)
            pu.clock.mark_busy()
            yield self.sim.timeout(duration)
            pu.clock.mark_idle()
            exec_total[0] += duration
            instances[node].requests_served += 1
            yield self.sim.timeout(self._msg_time(instances[node], pu))
            for dst, payload, handle in out_handles[node]:
                if dst != "__gateway__":
                    t_sent[(node, dst)] = self.sim.now
                yield from shim.xfifo_write(groups[node], handle, node, payload)

        for node in dag.nodes:
            self.sim.spawn(node_proc(node))

        start = self.sim.now
        yield from host_shim.xfifo_write(
            gateway_group, response_handle_box["entry"], {"req": True}, request_bytes
        )
        for _sink in dag.sinks:
            yield from host_shim.xfifo_read(
                gateway_group, response_handle_box["h"]
            )
        total_s = self.sim.now - start

        for node, instance in instances.items():
            runtime.invoker.pools[placements[node].pu_id].release(
                instance, now=self.sim.now
            )
        runtime.invoker.notify_idle()
        return DagRunResult(
            dag=dag.name,
            total_s=total_s,
            exec_s=exec_total[0],
            edge_latencies_s=edge_latency,
            placements={n: p.name for n, p in placements.items()},
        )

    def _msg_time(self, instance, pu) -> float:
        slowdown = instance.function.work.dpu_slowdown
        if pu.kind is PuKind.DPU and slowdown is not None:
            factor = slowdown
        else:
            factor = 1.0 / pu.spec.speed
        return config.DAG_MSG_MS * config.MS * factor


def alexa_tree() -> FunctionDag:
    """The Alexa skill as its real tree shape: smarthome fans out to
    door and light (the Fig. 12 edge names)."""
    return FunctionDag(
        "alexa-tree",
        [
            DagEdge("frontend", "interact", 1024),
            DagEdge("interact", "smarthome", 819),
            DagEdge("smarthome", "door", 512),
            DagEdge("smarthome", "light", 307),
        ],
    )
