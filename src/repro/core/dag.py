"""Function chains (serverless DAGs) and nIPC-based DAG calls (§4.3).

Molecule's DAG communication is *direct-connect*: every function
instance creates a ``self_fifo`` named by its globally-unique UUID and
blocks reading it; Molecule injects caller/callee UUIDs per request so
instances write each other's FIFOs directly — local IPC when co-located
on a PU, neighbour IPC across PUs.  No local bus, no engine, and no API
gateway in the path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence, TYPE_CHECKING

from repro import config
from repro.errors import SchedulingError, WorkloadError
from repro.hardware.pu import ProcessingUnit
from repro.xpu.capability import Permission
from repro.xpu.fifo import FifoEnd

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.invoker import FunctionInstance
    from repro.core.molecule import MoleculeRuntime
    from repro.sandbox.runf import RunfRuntime


@dataclass(frozen=True)
class ChainStage:
    """One function in a chain, with its outgoing payload size."""

    function: str
    payload_out_bytes: int = 1024


@dataclass(frozen=True)
class Chain:
    """A linear function chain (the dominant serverless DAG shape)."""

    name: str
    stages: tuple[ChainStage, ...]

    def __post_init__(self):
        if not self.stages:
            raise WorkloadError(f"chain {self.name!r} has no stages")

    @property
    def function_names(self) -> list[str]:
        """Stage function names in order."""
        return [stage.function for stage in self.stages]

    @property
    def edges(self) -> list[tuple[str, str]]:
        """(caller, callee) pairs of consecutive stages."""
        names = self.function_names
        return list(zip(names, names[1:]))


@dataclass
class ChainResult:
    """Measured end-to-end run of one chain request."""

    chain: str
    total_s: float
    exec_s: float
    comm_s: float
    #: Latency of each inter-function edge, in stage order.
    edge_latencies_s: list[float]
    placements: list[str]

    @property
    def total_ms(self) -> float:
        """End-to-end latency in milliseconds."""
        return self.total_s / config.MS


class DagEngine:
    """Runs chains over warm instances using direct-connect FIFOs."""

    def __init__(self, runtime: "MoleculeRuntime"):
        self.runtime = runtime
        self._uuid_seq = itertools.count(1)

    @property
    def sim(self):
        return self.runtime.sim

    def prepare(self, chain: Chain, placements: Sequence[ProcessingUnit]):
        """Generator: pre-boot one warm instance per stage (the paper
        pre-boots instances for its communication experiments)."""
        if len(placements) != len(chain.stages):
            raise SchedulingError(
                f"chain {chain.name!r} has {len(chain.stages)} stages but "
                f"{len(placements)} placements"
            )
        for stage, pu in zip(chain.stages, placements):
            yield from self.runtime.invoker.invoke(stage.function, pu=pu)

    def run_chain(
        self,
        chain: Chain,
        placements: Sequence[ProcessingUnit],
        request_bytes: int = 1024,
    ):
        """Generator: execute one chain request, returning a
        :class:`ChainResult` with per-edge latencies."""
        runtime = self.runtime
        cluster = runtime.cluster
        n = len(chain.stages)
        if len(placements) != n:
            raise SchedulingError("placements do not match chain stages")

        # Acquire a warm instance per stage (must be prepared).
        instances = []
        for stage, pu in zip(chain.stages, placements):
            instance = runtime.invoker.pools[pu.pu_id].acquire(stage.function)
            if instance is None:
                raise SchedulingError(
                    f"no warm instance of {stage.function!r} on {pu.name}; "
                    "call prepare() first"
                )
            instances.append(instance)

        # Direct-connect setup: self FIFOs + capability grants.  Setup is
        # per-instance, not per-request, and is excluded from timings.
        groups = [
            cluster.register_process(pu.pu_id, name=f"{chain.name}-{i}")
            for i, pu in enumerate(placements)
        ]
        host = runtime.machine.host_cpu
        gateway_group = runtime.group
        host_shim = cluster.shim_on(host.pu_id)
        response_uuid = f"resp-{next(self._uuid_seq)}"
        response_handle = None
        self_handles = []
        next_handles: list = [None] * n

        def setup(sim):
            nonlocal response_handle
            response_handle = yield from host_shim.xfifo_init(
                gateway_group, response_uuid, response_uuid
            )
            for i, (pu, group) in enumerate(zip(placements, groups)):
                shim = cluster.shim_on(pu.pu_id)
                uuid = f"{chain.name}-{i}-{next(self._uuid_seq)}"
                handle = yield from shim.xfifo_init(group, uuid, uuid)
                self_handles.append(handle)
            for i in range(n):
                shim = cluster.shim_on(placements[i].pu_id)
                if i + 1 < n:
                    target = self_handles[i + 1]
                    yield from cluster.shim_on(placements[i + 1].pu_id).grant_cap(
                        groups[i + 1],
                        groups[i].xpu_pid,
                        target.fifo.obj_id,
                        Permission.WRITE,
                    )
                    next_handles[i] = yield from shim.xfifo_connect(
                        groups[i], target.fifo.global_uuid, FifoEnd.WRITE
                    )
                else:
                    yield from host_shim.grant_cap(
                        gateway_group,
                        groups[i].xpu_pid,
                        response_handle.fifo.obj_id,
                        Permission.WRITE,
                    )
                    next_handles[i] = yield from shim.xfifo_connect(
                        groups[i], response_uuid, FifoEnd.WRITE
                    )

        setup_proc = self.sim.spawn(setup(self.sim))
        yield setup_proc
        entry_grant = cluster.shim_on(placements[0].pu_id).grant_cap(
            groups[0], gateway_group.xpu_pid, self_handles[0].fifo.obj_id,
            Permission.WRITE,
        )
        yield self.sim.spawn(entry_grant)
        entry_handle = yield from host_shim.xfifo_connect(
            gateway_group, self_handles[0].fifo.global_uuid, FifoEnd.WRITE
        )

        # Per-request measurement.
        t_send = [0.0] * n
        t_recv = [0.0] * n
        exec_total = [0.0]

        def msg_time(instance, pu) -> float:
            """Language-runtime serialize/deserialize cost of one side of
            a DAG message on ``pu`` (part of every measured hop)."""
            slowdown = instance.function.work.dpu_slowdown
            from repro.hardware.pu import PuKind

            if pu.kind is PuKind.DPU and slowdown is not None:
                factor = slowdown
            else:
                factor = 1.0 / pu.spec.speed
            return config.DAG_MSG_MS * config.MS * factor

        def stage_proc(i):
            pu = placements[i]
            shim = cluster.shim_on(pu.pu_id)
            payload = yield from shim.xfifo_read(groups[i], self_handles[i])
            yield self.sim.timeout(msg_time(instances[i], pu))  # deserialize
            t_recv[i] = self.sim.now
            duration = instances[i].function.work.exec_time(pu)
            pu.clock.mark_busy()
            yield self.sim.timeout(duration)
            pu.clock.mark_idle()
            exec_total[0] += duration
            instances[i].requests_served += 1
            t_send[i] = self.sim.now
            out_bytes = chain.stages[i].payload_out_bytes
            yield self.sim.timeout(msg_time(instances[i], pu))  # serialize
            yield from shim.xfifo_write(
                groups[i], next_handles[i], payload, out_bytes
            )

        for i in range(n):
            self.sim.spawn(stage_proc(i))

        start = self.sim.now
        # Gateway dispatches the request into the first stage's FIFO.
        yield from host_shim.xfifo_write(
            gateway_group, entry_handle, {"request": True}, request_bytes
        )
        yield from host_shim.xfifo_read(gateway_group, response_handle)
        total_s = self.sim.now - start

        # Release instances back to their pools.
        for instance, pu in zip(instances, placements):
            runtime.invoker.pools[pu.pu_id].release(instance, now=self.sim.now)
        runtime.invoker.notify_idle()

        edges = [t_recv[i + 1] - t_send[i] for i in range(n - 1)]
        return ChainResult(
            chain=chain.name,
            total_s=total_s,
            exec_s=exec_total[0],
            comm_s=total_s - exec_total[0],
            edge_latencies_s=edges,
            placements=[pu.name for pu in placements],
        )


def run_fpga_chain(
    runtime: "RunfRuntime",
    sandbox_ids: Sequence[str],
    mode: str = "shm",
    payload_bytes: int = 4096,
    exec_time_s: Optional[float] = None,
    wrapper_handoff_s: float = 10e-6,
    dispatch_s: float = 5e-6,
):
    """Generator: run an all-FPGA function chain (Fig. 13).

    The chain executes inside the FPGA wrapper, kernel to kernel — it
    does not re-enter the serverless request path per stage, so the only
    per-stage software cost is the wrapper's dispatch.

    ``mode='copying'`` moves the intermediate payload device->host->
    device between stages; ``mode='shm'`` leaves it in the FPGA-attached
    DRAM bank using data retention (§4.3 zero-copy), paying only a
    wrapper handoff.  Returns the end-to-end seconds.
    """
    if mode not in ("copying", "shm"):
        raise WorkloadError(f"unknown FPGA chain mode {mode!r}")
    if mode == "shm" and not runtime.device.data_retention:
        raise WorkloadError("shm mode requires DRAM data retention")
    sim = runtime.sim
    device = runtime.device
    host = device.pu.host_pu
    route = None
    if host is not None:
        from repro.hardware.interconnect import Link, LinkKind

        link = Link(host.pu_id, device.pu.pu_id, LinkKind.DMA)
    start = sim.now

    def dma_leg():
        yield sim.timeout(link.transfer_time(payload_bytes))
        yield sim.timeout(host.copy_time(payload_bytes))

    yield from dma_leg()  # initial input: host -> device
    for index, sandbox_id in enumerate(sandbox_ids):
        sandbox = runtime.get(sandbox_id)
        kernel_name = sandbox.backend.instance.kernel.name
        yield sim.timeout(dispatch_s)
        if exec_time_s is None:
            yield from device.invoke(kernel_name)
        else:
            device.pu.clock.mark_busy()
            yield sim.timeout(exec_time_s)
            device.pu.clock.mark_idle()
        last = index == len(sandbox_ids) - 1
        if last:
            break
        if mode == "copying":
            yield from dma_leg()  # result out to host DRAM
            yield from dma_leg()  # back into the next kernel's bank
        else:
            device.banks[0].payload = f"stage-{index}"
            yield sim.timeout(wrapper_handoff_s)
    yield from dma_leg()  # final output: device -> host
    return sim.now - start
