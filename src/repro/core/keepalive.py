"""Keep-alive policies: which instances stay warm (§4.2, §5).

For CPU/DPU, warm instances live in per-PU pools with LRU eviction
(FaasCache-style greedy keep-alive is a drop-in policy).  For FPGA,
"keeping alive" means choosing which kernels are packed into the next
vectorized image; Molecule tends to cache the functions of one chain in
the same image (§5 "Keep-alive policies").
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, TYPE_CHECKING

from repro.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.invoker import FunctionInstance


class WarmPool:
    """LRU pool of idle warm instances on one PU, with optional TTL.

    ``keep_alive_ttl_s`` bounds how long an idle instance survives:
    :meth:`reap_expired` (driven by the invoker's reaper process)
    removes instances idle longer than the TTL — the fixed-keep-alive
    policy commercial platforms use, and the baseline FaasCache-style
    policies improve on (§5).
    """

    def __init__(self, capacity: int = 64, keep_alive_ttl_s: Optional[float] = None):
        if capacity < 1:
            raise SchedulingError(f"warm pool capacity must be >= 1: {capacity}")
        if keep_alive_ttl_s is not None and keep_alive_ttl_s <= 0:
            raise SchedulingError(f"TTL must be positive: {keep_alive_ttl_s}")
        self.capacity = capacity
        self.keep_alive_ttl_s = keep_alive_ttl_s
        #: func_name -> TTL override; adaptive keep-alive (the warm-path
        #: pre-warmer) tunes these per function from the inter-arrival
        #: distribution.  Functions not listed use the pool-wide TTL.
        self.ttl_overrides: dict[str, float] = {}
        #: func_name -> list of (idle_since, instance).
        self._idle: OrderedDict[str, list] = OrderedDict()
        #: Cache statistics for reports.
        self.hits = 0
        self.misses = 0
        self.expired = 0

    def __len__(self) -> int:
        return sum(len(v) for v in self._idle.values())

    def acquire(self, func_name: str) -> Optional["FunctionInstance"]:
        """Take a warm instance of ``func_name``; None on a miss."""
        bucket = self._idle.get(func_name)
        if bucket:
            self._idle.move_to_end(func_name)
            self.hits += 1
            _since, instance = bucket.pop()
            if not bucket:
                # Keep the invariant "every bucket is non-empty": an
                # emptied bucket left behind would drift to the LRU
                # front and crash the eviction loop's pop(0).
                del self._idle[func_name]
            return instance
        self.misses += 1
        return None

    def release(self, instance: "FunctionInstance", now: float = 0.0) -> list["FunctionInstance"]:
        """Return an instance to the pool; returns any LRU evictions."""
        name = instance.function.name
        self._idle.setdefault(name, []).append((now, instance))
        self._idle.move_to_end(name)
        evicted: list = []
        while len(self) > self.capacity:
            oldest_name, bucket = next(iter(self._idle.items()))
            if not bucket:  # defensive: never pop an empty bucket
                del self._idle[oldest_name]
                continue
            evicted.append(bucket.pop(0)[1])
            if not bucket:
                del self._idle[oldest_name]
        return evicted

    def ttl_for(self, func_name: str) -> Optional[float]:
        """The keep-alive TTL governing one function's idle instances."""
        return self.ttl_overrides.get(func_name, self.keep_alive_ttl_s)

    def reap_expired(self, now: float) -> list["FunctionInstance"]:
        """Remove instances idle past their function's keep-alive TTL."""
        if self.keep_alive_ttl_s is None and not self.ttl_overrides:
            return []
        reaped: list = []
        for name in list(self._idle):
            ttl = self.ttl_for(name)
            if ttl is None:
                continue
            bucket = self._idle[name]
            keep = []
            for since, instance in bucket:
                if now - since > ttl:
                    reaped.append(instance)
                else:
                    keep.append((since, instance))
            if keep:
                self._idle[name] = keep
            else:
                del self._idle[name]
        self.expired += len(reaped)
        return reaped

    def idle_instances(
        self, func_name: Optional[str] = None
    ) -> list["FunctionInstance"]:
        """The idle instances currently pooled (without removing them).

        Public read-only view — tests and observability code should use
        this instead of reaching into the pool's internal buckets.
        ``func_name`` narrows the view to one function.
        """
        if func_name is not None:
            return [inst for _since, inst in self._idle.get(func_name, [])]
        return [
            inst for bucket in self._idle.values() for _since, inst in bucket
        ]

    def drop_all(self, func_name: str) -> list["FunctionInstance"]:
        """Remove every idle instance of one function."""
        return [inst for _since, inst in self._idle.pop(func_name, [])]

    @property
    def hit_rate(self) -> float:
        """Fraction of acquires served warm."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class GdsfWarmPool(WarmPool):
    """FaasCache-style greedy-dual keep-alive (drop-in WarmPool).

    Capacity evictions pick the function whose warm instances are
    cheapest to lose under the GDSF priority ``clock + freq * cost``
    (cost = the function's import/cold-start cost in ms, one cell per
    function), instead of plain pool-wide LRU.  Frequency counts warm
    hits, so a hot cheap function can still outrank a cold expensive
    one; the aging clock rises on every eviction so idle functions
    decay without any wall-clock input.  TTL reaping (and the adaptive
    per-function overrides) work unchanged on top.
    """

    def __init__(
        self, capacity: int = 64, keep_alive_ttl_s: Optional[float] = None
    ):
        super().__init__(capacity, keep_alive_ttl_s=keep_alive_ttl_s)
        from repro.reuse.gdsf import GreedyDualTracker

        self.tracker = GreedyDualTracker()

    @staticmethod
    def _cost(instance: "FunctionInstance") -> float:
        code = getattr(instance.function, "code", None)
        cost = getattr(code, "import_ms", None)
        return float(cost) if cost else 1.0

    def _sync_tracker(self) -> None:
        """Drop tracker cells for functions with no idle instances."""
        for key in self.tracker.keys():
            if key not in self._idle:
                self.tracker.remove(key)

    def acquire(self, func_name: str) -> Optional["FunctionInstance"]:
        instance = super().acquire(func_name)
        if instance is not None:
            if func_name in self._idle:
                self.tracker.touch(func_name)
            else:
                # Bucket emptied: a take-out is not an eviction.
                self.tracker.remove(func_name)
        return instance

    def release(
        self, instance: "FunctionInstance", now: float = 0.0
    ) -> list["FunctionInstance"]:
        name = instance.function.name
        if name in self.tracker:
            self.tracker.touch(name)
        else:
            self.tracker.admit(name, cost=self._cost(instance))
        self._idle.setdefault(name, []).append((now, instance))
        self._idle.move_to_end(name)
        evicted: list = []
        while len(self) > self.capacity:
            victim = self.tracker.victim()
            bucket = self._idle[victim]
            evicted.append(bucket.pop(0)[1])
            if not bucket:
                del self._idle[victim]
                self.tracker.remove(victim, evicted=True)
            else:
                self.tracker.age(self.tracker.priority_of(victim))
        return evicted

    def reap_expired(self, now: float) -> list["FunctionInstance"]:
        reaped = super().reap_expired(now)
        if reaped:
            self._sync_tracker()
        return reaped

    def drop_all(self, func_name: str) -> list["FunctionInstance"]:
        dropped = super().drop_all(func_name)
        if dropped:
            self.tracker.remove(func_name)
        return dropped


#: Keep-alive policy names accepted by the invoker/runtime knobs.
KEEPALIVE_POLICIES = ("ttl", "gdsf")


def make_warm_pool(
    policy: str,
    capacity: int,
    keep_alive_ttl_s: Optional[float] = None,
) -> WarmPool:
    """Build one PU's warm pool under the named keep-alive policy."""
    if policy == "ttl":
        return WarmPool(capacity, keep_alive_ttl_s=keep_alive_ttl_s)
    if policy == "gdsf":
        return GdsfWarmPool(capacity, keep_alive_ttl_s=keep_alive_ttl_s)
    raise SchedulingError(
        f"unknown keep-alive policy {policy!r}; one of {KEEPALIVE_POLICIES}"
    )


@dataclass(frozen=True)
class ImagePlan:
    """The kernel packing chosen for the next FPGA image."""

    func_names: tuple[str, ...]
    copies_each: int


class FpgaImagePlanner:
    """Chooses the kernel vector for the next FPGA image.

    Policy from §5: functions invoked together (a chain) are cached in
    one image; each function gets ``copies_each`` instances (the paper's
    Table 4 wrapper packs 4 copies of 3 kernels = 12 instances).
    """

    def __init__(self, copies_each: int = 4, max_instances: int = 12):
        if copies_each < 1 or max_instances < copies_each:
            raise SchedulingError("invalid image planner configuration")
        self.copies_each = copies_each
        self.max_instances = max_instances
        #: Functions dropped from plans because the predicted set did
        #: not fit ``max_instances`` — visible packing pressure instead
        #: of a silent cap.
        self.dropped = 0
        #: Observability hub (optional); wired by the runtime so drops
        #: surface as ``repro_fpga_planner_dropped_total``.
        self.obs = None

    def plan(self, predicted: Iterable[str]) -> ImagePlan:
        """Pack the predicted-hot functions into one image plan.

        Functions that do not fit ``max_instances`` are dropped least-
        recently-predicted first; every drop is counted on
        :attr:`dropped` (and the planner-drop metric when an
        observability hub is wired) so packing pressure is visible.
        """
        names: list[str] = []
        for name in predicted:
            if name not in names:
                names.append(name)
        if not names:
            raise SchedulingError("image plan needs at least one function")
        copies = min(self.copies_each, self.max_instances // len(names))
        copies = max(copies, 1)
        dropped: list[str] = []
        while len(names) * copies > self.max_instances:
            dropped.append(names.pop())  # drop the least-recently predicted
        if dropped:
            self.dropped += len(dropped)
            if self.obs is not None:
                self.obs.on_planner_drop(len(dropped))
        return ImagePlan(func_names=tuple(names), copies_each=copies)
