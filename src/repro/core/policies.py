"""Profile-selection policies (§5 "Profile selections").

When a request arrives for a multi-profile function, the control plane
picks one PU kind.  The prototype uses chain co-location; the paper
notes other policies (e.g. ML-model-based) are pluggable.  Implemented
here:

* :class:`UserOrderPolicy`   — honour the user's profile order (default);
* :class:`CheapestPolicy`    — lowest price class first;
* :class:`FastestPolicy`     — lowest estimated warm latency first;
* :class:`CostAwarePolicy`   — lowest observed cost per invocation from
  the billing ledger, falling back to price order with no history;
* :class:`ChainLocalityPolicy` — wrap any policy, pinning chain members
  to the chain's home PU kind.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.core.billing import BillingLedger
from repro.core.registry import FunctionDef
from repro.errors import SchedulingError
from repro.hardware.machine import HeterogeneousComputer
from repro.hardware.pu import ProcessingUnit, PuKind


class PlacementPolicy(Protocol):
    """Orders a function's allowed PU kinds for one request."""

    def kind_order(self, function: FunctionDef) -> list[PuKind]:
        """Allowed kinds, most preferred first."""
        ...


class UserOrderPolicy:
    """The order the user listed in the function's profiles."""

    def kind_order(self, function: FunctionDef) -> list[PuKind]:
        """See :class:`PlacementPolicy`."""
        return list(function.profiles)


class CheapestPolicy:
    """Lowest price class first (DPU < CPU < GPU < FPGA, §4.1)."""

    def kind_order(self, function: FunctionDef) -> list[PuKind]:
        def price(kind: PuKind) -> float:
            from repro.hardware.pu import PriceClass

            return PriceClass[kind.name].value

        return sorted(function.profiles, key=price)


class FastestPolicy:
    """Lowest estimated warm execution latency first."""

    def __init__(self, machine: HeterogeneousComputer):
        self.machine = machine

    def kind_order(self, function: FunctionDef) -> list[PuKind]:
        def latency(kind: PuKind) -> float:
            pus = self.machine.pus_of_kind(kind)
            if not pus:
                return float("inf")
            try:
                return function.work.exec_time(pus[0])
            except Exception:
                return float("inf")

        return sorted(function.profiles, key=latency)


class CostAwarePolicy:
    """Ledger-informed: prefer the kind that has billed the least."""

    def __init__(self, ledger: BillingLedger):
        self.ledger = ledger
        self._fallback = CheapestPolicy()

    def kind_order(self, function: FunctionDef) -> list[PuKind]:
        observed = self.ledger.cheapest_kind_for(function.name)
        order = self._fallback.kind_order(function)
        if observed is not None and observed in order:
            order.remove(observed)
            order.insert(0, observed)
        return order


class ChainLocalityPolicy:
    """Pin functions of one chain to the chain's home kind (§5), with a
    wrapped policy deciding the rest."""

    def __init__(self, inner: PlacementPolicy):
        self.inner = inner
        self._chain_home: dict[str, PuKind] = {}

    def pin_chain(self, function_names, kind: PuKind) -> None:
        """Record that these functions form one chain homed on ``kind``."""
        for name in function_names:
            self._chain_home[name] = kind

    def unpin_chain(self, function_names) -> None:
        """Remove a chain's pinning."""
        for name in function_names:
            self._chain_home.pop(name, None)

    def kind_order(self, function: FunctionDef) -> list[PuKind]:
        order = self.inner.kind_order(function)
        home = self._chain_home.get(function.name)
        if home is not None:
            if home not in function.profiles:
                raise SchedulingError(
                    f"chain pins {function.name!r} to {home.value}, which is "
                    "not one of its profiles"
                )
            order = [home] + [kind for kind in order if kind is not home]
        return order


def choose_pu(
    machine: HeterogeneousComputer,
    policy: PlacementPolicy,
    function: FunctionDef,
    has_capacity,
) -> Optional[ProcessingUnit]:
    """First PU, in policy order, for which ``has_capacity(pu)`` holds."""
    for kind in policy.kind_order(function):
        for pu in machine.pus_of_kind(kind):
            if has_capacity(pu):
                return pu
    return None
