"""The control plane's placement decisions (§4.1, §5 "Profile
selections").

Given a function's allowed PU kinds, the scheduler picks the concrete
PU for a new instance:

* admission-controlled by instance memory (the Fig. 2a density
  experiment emerges from this);
* cheapest-first across kinds (DPU before CPU before accelerators) by
  default, or an explicit preference;
* chain-aware: functions of one chain are co-located on the same PU
  when possible, for communication locality.
"""

from __future__ import annotations

from typing import Iterable, Optional, TYPE_CHECKING

from repro.errors import SchedulingError
from repro.hardware.machine import HeterogeneousComputer
from repro.hardware.pu import ProcessingUnit, PuKind
from repro.core.registry import FunctionDef

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.reliability import HealthRegistry
    from repro.obs import Observability

#: Kind preference when the user allows several (cheapest first, §4.1).
_KIND_PRICE_ORDER = (PuKind.DPU, PuKind.CPU, PuKind.GPU, PuKind.FPGA)


class Scheduler:
    """Places function instances onto PUs."""

    def __init__(
        self,
        machine: HeterogeneousComputer,
        prefer_cheapest: bool = False,
        obs: Optional["Observability"] = None,
        health: Optional["HealthRegistry"] = None,
    ):
        self.machine = machine
        #: When False (default), kinds are tried in the order the user
        #: listed them in the function's profiles.
        self.prefer_cheapest = prefer_cheapest
        self.obs = obs
        #: Per-PU health registry; crashed and open-circuit PUs are
        #: excluded from candidates.  None disables health filtering.
        self.health = health
        #: (function name, kind) -> kind-ordered PU tuple.  Function
        #: profiles and the machine topology are static, so this never
        #: needs invalidation for the life of one deployment.
        self._base_candidates: dict[
            tuple[str, Optional[PuKind]], tuple[ProcessingUnit, ...]
        ] = {}
        #: (function name, kind) -> (health version, valid-until time,
        #: filtered PU tuple).  Invalidated by breaker/crash transitions
        #: (version bumps) and by OPEN cool-down expiry (valid-until).
        self._available_candidates: dict[
            tuple[str, Optional[PuKind]],
            tuple[int, float, tuple[ProcessingUnit, ...]],
        ] = {}
        #: Optional hedge feedback (repro.hedging with ``pu_feedback``):
        #: reorders primary placement candidates so PUs whose hedged
        #: primaries chronically lose their races sink to the back.
        #: None (the default) keeps placement byte-identical.
        self.hedge_feedback = None

    def _kind_order(self, function: FunctionDef) -> list[PuKind]:
        if self.prefer_cheapest:
            return [k for k in _KIND_PRICE_ORDER if function.supports(k)]
        return list(function.profiles)

    def candidates(
        self, function: FunctionDef, kind: Optional[PuKind] = None
    ) -> tuple[ProcessingUnit, ...]:
        """PUs that could host this function, in placement order.

        Crashed PUs and PUs whose circuit breaker is open are excluded
        when a health registry is wired in.  Results are cached: the
        unfiltered kind-ordered list is static, and the health-filtered
        view is reused until a breaker or crash transition bumps the
        registry version (or an OPEN cool-down elapses).  Returns an
        immutable tuple shared across calls.
        """
        key = (function.name, kind)
        base = self._base_candidates.get(key)
        if base is None:
            kinds = [kind] if kind is not None else self._kind_order(function)
            pus: list[ProcessingUnit] = []
            for wanted in kinds:
                if not function.supports(wanted):
                    raise SchedulingError(
                        f"function {function.name!r} has no {wanted.value} profile"
                    )
                pus.extend(self.machine.pus_of_kind(wanted))
            base = tuple(pus)
            self._base_candidates[key] = base
        health = self.health
        if health is None:
            return base
        cached = self._available_candidates.get(key)
        if cached is not None:
            version, valid_until, filtered = cached
            if version == health.version and health.sim.now < valid_until:
                return filtered
        filtered, valid_until = health.filter_available(base)
        # Capture the version *after* filtering: availability checks may
        # themselves transition OPEN -> HALF_OPEN and bump it.
        self._available_candidates[key] = (health.version, valid_until, filtered)
        return filtered

    def clone_candidates(
        self,
        function: FunctionDef,
        kind: Optional[PuKind] = None,
        exclude: Optional[ProcessingUnit] = None,
    ) -> tuple[ProcessingUnit, ...]:
        """Candidate PUs for a hedge clone: the normal breaker-filtered
        candidate list minus the primary copy's PU (anti-affinity).

        An empty result means the clone has nowhere distinct and
        healthy to run, and the hedge policy skips cloning.
        """
        return tuple(
            pu for pu in self.candidates(function, kind) if pu is not exclude
        )

    def place(
        self,
        function: FunctionDef,
        kind: Optional[PuKind] = None,
        near: Optional[ProcessingUnit] = None,
        exclude: Optional[ProcessingUnit] = None,
    ) -> ProcessingUnit:
        """Choose and reserve a PU for one new instance.

        Reserves the instance's memory immediately (admission control);
        call :meth:`release` when the instance dies.  ``near`` expresses
        chain co-location: that PU is tried first.  ``exclude`` expresses
        hedge anti-affinity: that PU is never chosen.
        """
        candidates = self.candidates(function, kind)
        if self.hedge_feedback is not None:
            candidates = self.hedge_feedback.reorder_candidates(candidates)
        if exclude is not None:
            candidates = tuple(pu for pu in candidates if pu is not exclude)
        if near is not None and near in candidates:
            candidates = [near] + [pu for pu in candidates if pu is not near]
        for pu in candidates:
            if pu.kind.general_purpose:
                if pu.try_reserve_dram(function.code.memory_mb):
                    self._observe_placement(pu)
                    return pu
            else:
                # Accelerator capacity is governed by its runtime
                # (fabric resources / contexts), not host-style DRAM.
                self._observe_placement(pu)
                return pu
        if self.obs is not None:
            self.obs.on_placement_failure()
        raise SchedulingError(
            f"no PU has capacity for {function.name!r} "
            f"({function.code.memory_mb}MB over {[p.name for p in candidates]})"
        )

    def warm_locality(
        self,
        function: FunctionDef,
        pools,
        kind: Optional[PuKind] = None,
    ) -> Optional[ProcessingUnit]:
        """The first healthy candidate PU holding a warm idle instance.

        ``pools`` is the invoker's ``pu_id -> WarmPool`` mapping.  The
        sharded front end's locality router uses this to steer a
        request to the shard fronting a PU with a warm sandbox; returns
        None when no candidate has one (callers fall back to their
        default placement).
        """
        for pu in self.candidates(function, kind):
            pool = pools.get(pu.pu_id)
            if pool is not None and pool.idle_instances(function.name):
                return pu
        return None

    def _observe_placement(self, pu: ProcessingUnit) -> None:
        if self.obs is not None:
            self.obs.on_placement(pu.kind.value)

    def release(self, function: FunctionDef, pu: ProcessingUnit) -> None:
        """Return the memory reservation of a dead instance."""
        if pu.kind.general_purpose:
            pu.release_dram(function.code.memory_mb)

    def max_density(self, function: FunctionDef, kinds: Iterable[PuKind]) -> int:
        """How many concurrent instances fit across PUs of ``kinds``
        (the Fig. 2a vertical-scaling metric)."""
        total = 0
        for kind in kinds:
            for pu in self.machine.pus_of_kind(kind):
                total += int(pu.dram_free_mb // function.code.memory_mb)
        return total
