"""Pay-as-you-go billing (§1, §4.1).

Serverless bills at 1ms granularity.  Molecule's heterogeneous twist is
per-PU *price classes*: end-users explicitly pick PU kinds by price and
capability — DPU cheapest, FPGA dearest — so running the same function
on a slower-but-cheaper PU can cost less.  The ledger records every
invocation and aggregates per function and per PU kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import ReproError
from repro.hardware.pu import PuKind


class BillingError(ReproError):
    """Invalid billing operation."""


@dataclass(frozen=True)
class LedgerEntry:
    """One billed invocation."""

    request_id: int
    function: str
    pu_kind: PuKind
    pu_name: str
    duration_s: float
    billed_ms: int
    cost: float
    #: True for work a losing hedge copy executed and then discarded
    #: (repro.hedging).  The provider still bills it — that is exactly
    #: the cost overhead the hedge reports account for.
    hedge_waste: bool = False


@dataclass
class BillingSummary:
    """Aggregate over a set of ledger entries."""

    invocations: int
    billed_ms: int
    cost: float

    def merged(self, other: "BillingSummary") -> "BillingSummary":
        """Combine two summaries."""
        return BillingSummary(
            invocations=self.invocations + other.invocations,
            billed_ms=self.billed_ms + other.billed_ms,
            cost=self.cost + other.cost,
        )


class BillingLedger:
    """The machine's invocation ledger."""

    def __init__(self):
        self._entries: list[LedgerEntry] = []
        #: Running sum of every entry's cost — O(1) for hot-path
        #: consumers (the hedge budget's waste ceiling) where
        #: :meth:`total` would rescan the ledger.
        self.total_cost = 0.0

    def charge(
        self,
        request_id: int,
        function: str,
        pu,
        duration_s: float,
        hedge_waste: bool = False,
    ) -> LedgerEntry:
        """Record one invocation's bill (1ms minimum granularity)."""
        if duration_s < 0:
            raise BillingError(f"negative billed duration: {duration_s}")
        billed_ms = max(1, round(duration_s * 1000))
        price = pu.spec.price_class
        entry = LedgerEntry(
            request_id=request_id,
            function=function,
            pu_kind=pu.kind,
            pu_name=pu.name,
            duration_s=duration_s,
            billed_ms=billed_ms,
            cost=price.value * billed_ms,
            hedge_waste=hedge_waste,
        )
        self._entries.append(entry)
        self.total_cost += entry.cost
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> list[LedgerEntry]:
        """All entries (copy)."""
        return list(self._entries)

    def _summarize(self, entries: Iterable[LedgerEntry]) -> BillingSummary:
        entries = list(entries)
        return BillingSummary(
            invocations=len(entries),
            billed_ms=sum(e.billed_ms for e in entries),
            cost=sum(e.cost for e in entries),
        )

    def total(self) -> BillingSummary:
        """Whole-ledger summary."""
        return self._summarize(self._entries)

    def by_function(self, function: str) -> BillingSummary:
        """Summary for one function."""
        return self._summarize(e for e in self._entries if e.function == function)

    def by_pu_kind(self, kind: PuKind) -> BillingSummary:
        """Summary for one PU kind."""
        return self._summarize(e for e in self._entries if e.pu_kind == kind)

    def hedge_waste_total(self) -> BillingSummary:
        """Summary of the entries charged for discarded hedge work."""
        return self._summarize(e for e in self._entries if e.hedge_waste)

    def cheapest_kind_for(self, function: str) -> Optional[PuKind]:
        """The PU kind that has billed this function the least per
        invocation so far (what a cost-aware profile selector would
        choose, §4.1)."""
        per_kind: dict[PuKind, list[float]] = {}
        for entry in self._entries:
            if entry.function == function:
                per_kind.setdefault(entry.pu_kind, []).append(entry.cost)
        if not per_kind:
            return None
        return min(
            per_kind, key=lambda kind: sum(per_kind[kind]) / len(per_kind[kind])
        )
