"""Multi-machine scheduling: the global manager (§4.1).

"The API Gateway then schedules a function's instance to machines with
at least one of the required kinds of PU where the function can
execute."  A :class:`GlobalManager` fronts a fleet of
:class:`MoleculeRuntime` worker machines sharing one simulator, routes
each request to a machine offering a required PU kind (warm-first,
then least-loaded), and co-locates whole chains on one machine for
communication locality (§4.1: "Molecule schedules a function chain in
one computer in most cases").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.dag import Chain
from repro.core.molecule import MoleculeRuntime
from repro.core.registry import FunctionDef
from repro.errors import SchedulingError
from repro.hardware.pu import PuKind
from repro.sim import Simulator


@dataclass
class WorkerInfo:
    """One worker machine in the fleet."""

    name: str
    runtime: MoleculeRuntime

    def pu_kinds(self) -> set[PuKind]:
        """PU kinds this machine offers."""
        return {pu.kind for pu in self.runtime.machine.pus.values()}

    def free_dram_mb(self) -> float:
        """Spare instance memory across general-purpose PUs."""
        return sum(
            pu.dram_free_mb for pu in self.runtime.machine.general_purpose_pus()
        )

    def has_warm(self, function_name: str) -> bool:
        """True if some PU pool holds an idle instance of the function."""
        for pool in self.runtime.invoker.pools.values():
            if pool._idle.get(function_name):
                return True
        return False


class GlobalManager:
    """Fleet-level request routing."""

    def __init__(self, sim: Optional[Simulator] = None):
        self.sim = sim or Simulator()
        self.workers: list[WorkerInfo] = []
        self.routed: dict[str, int] = {}

    # -- fleet management ----------------------------------------------------------

    def add_worker(self, name: str, runtime: MoleculeRuntime) -> WorkerInfo:
        """Register a worker machine (must share this manager's sim)."""
        if runtime.sim is not self.sim:
            raise SchedulingError(
                f"worker {name!r} runs on a different simulator"
            )
        if any(worker.name == name for worker in self.workers):
            raise SchedulingError(f"duplicate worker name {name!r}")
        info = WorkerInfo(name=name, runtime=runtime)
        self.workers.append(info)
        return info

    def build_worker(self, name: str, num_dpus: int = 2, **kwargs) -> WorkerInfo:
        """Construct and register a CPU+DPU worker on the shared sim."""
        from repro.hardware.machine import build_cpu_dpu_machine

        machine = build_cpu_dpu_machine(self.sim, num_dpus=num_dpus)
        runtime = MoleculeRuntime(self.sim, machine, **kwargs)
        runtime.start()
        return self.add_worker(name, runtime)

    def worker(self, name: str) -> WorkerInfo:
        """Worker by name."""
        for info in self.workers:
            if info.name == name:
                return info
        raise SchedulingError(f"unknown worker {name!r}")

    # -- deployment -------------------------------------------------------------------

    def deploy(self, function: FunctionDef, **kwargs):
        """Generator: deploy to every machine that can host the function."""
        eligible = self.eligible_workers(function)
        if not eligible:
            raise SchedulingError(
                f"no machine offers a PU kind in {function.profiles}"
            )
        for info in eligible:
            yield from info.runtime.deploy(function, **kwargs)
        return function

    def deploy_now(self, function: FunctionDef, **kwargs) -> FunctionDef:
        """Synchronous convenience wrapper."""
        proc = self.sim.spawn(self.deploy(function, **kwargs))
        self.sim.run()
        return proc.value

    def eligible_workers(self, function: FunctionDef) -> list[WorkerInfo]:
        """Machines offering at least one of the function's PU kinds."""
        return [
            info
            for info in self.workers
            if info.pu_kinds() & set(function.profiles)
        ]

    # -- routing -----------------------------------------------------------------------

    def choose_worker(self, function: FunctionDef) -> WorkerInfo:
        """Warm-first, then most-spare-memory routing."""
        eligible = self.eligible_workers(function)
        if not eligible:
            raise SchedulingError(
                f"no machine can host function {function.name!r}"
            )
        warm = [info for info in eligible if info.has_warm(function.name)]
        pool = warm or eligible
        return max(pool, key=lambda info: info.free_dram_mb())

    def invoke(self, name: str, **kwargs):
        """Generator: route one request to a worker and run it there."""
        target = None
        for info in self.workers:
            if name in info.runtime.registry:
                function = info.runtime.registry.get(name)
                target = self.choose_worker(function)
                break
        if target is None:
            raise SchedulingError(f"function {name!r} is deployed nowhere")
        self.routed[target.name] = self.routed.get(target.name, 0) + 1
        result = yield from target.runtime.invoke(name, **kwargs)
        return result

    def invoke_now(self, name: str, **kwargs):
        """Synchronous convenience wrapper."""
        proc = self.sim.spawn(self.invoke(name, **kwargs))
        self.sim.run()
        return proc.value

    def run_chain(self, chain: Chain, placements_kinds: Sequence[PuKind] = ()):
        """Generator: run a whole chain on ONE machine (§4.1 locality).

        ``placements_kinds`` optionally forces a PU kind per stage;
        the machine is the one that can satisfy every stage.
        """
        first = None
        for info in self.workers:
            if all(s.function in info.runtime.registry for s in chain.stages):
                first = info
                break
        if first is None:
            raise SchedulingError(f"chain {chain.name!r} is not fully deployed")
        runtime = first.runtime
        machine = runtime.machine
        placements = []
        kinds = list(placements_kinds) or [PuKind.CPU] * len(chain.stages)
        if len(kinds) != len(chain.stages):
            raise SchedulingError("placement kinds do not match chain stages")
        for kind in kinds:
            pus = machine.pus_of_kind(kind)
            if not pus:
                raise SchedulingError(
                    f"worker {first.name!r} has no {kind.value} PU"
                )
            placements.append(pus[0])
        yield from runtime.dag.prepare(chain, placements)
        result = yield from runtime.run_chain(chain, placements)
        return result
