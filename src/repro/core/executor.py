"""Per-PU executors (§4.1).

Molecule runs on one PU (the host CPU here) and manages the others
through *executors*: processes launched via xSpawn that receive
commands over nIPC, act on the local OS through the sandbox runtime,
and send results back.  The command/reply channels are real XPU-FIFOs,
so every remote management action pays the neighbour-IPC costs the
paper measures (cfork-XPU adds 1-3ms over cfork-local, Fig. 10).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro import config
from repro.errors import XpuError
from repro.sandbox.base import FunctionCode, Language
from repro.sandbox.runc import RuncRuntime
from repro.sim import Event
from repro.xpu.capability import CapGroup, Permission
from repro.xpu.fifo import FifoEnd, XpuFifoHandle
from repro.xpu.shim import XpuShim


@dataclass
class Command:
    """One management command sent to an executor."""

    request_id: int
    verb: str
    args: dict[str, Any] = field(default_factory=dict)


#: Approximate wire size of a serialized command/reply message.
COMMAND_BYTES = 256
REPLY_BYTES = 128


class Executor:
    """The management agent on one general-purpose PU."""

    _ids = itertools.count(1)

    def __init__(
        self,
        shim: XpuShim,
        runc: RuncRuntime,
        group: CapGroup,
        cmd_handle: XpuFifoHandle,
        reply_writer: Callable,
    ):
        self.shim = shim
        self.runc = runc
        self.group = group
        self.cmd_handle = cmd_handle
        self._reply_writer = reply_writer
        self.commands_handled = 0

    @property
    def sim(self):
        """The shim's simulator."""
        return self.shim.sim

    # -- daemon ------------------------------------------------------------------

    def daemon(self):
        """Generator: the executor's main loop — read a command over
        nIPC, execute it against the local runtime, reply."""
        while True:
            command = yield from self.shim.xfifo_read(self.group, self.cmd_handle)
            result = yield from self._handle(command)
            self.commands_handled += 1
            yield from self._reply_writer(command.request_id, result)

    def _handle(self, command: Command):
        """Dispatch one command verb."""
        verb = command.verb
        args = command.args
        if verb == "ensure_template":
            template = yield from self.runc.ensure_template(
                args["language"], args.get("dedicated_to")
            )
            return template
        if verb == "prepare_containers":
            count = yield from self.runc.prepare_containers(args.get("count", 1))
            return count
        if verb == "cfork":
            # Remote-cfork coordination overhead (config push, namespace
            # wiring across the command channel): the 1-3ms of Fig. 10.
            yield self.sim.timeout(
                config.STARTUP.remote_cfork_overhead_ms * config.MS
            )
            sandbox = yield from self.runc.cfork(args["sandbox_id"], args["code"])
            return sandbox
        if verb == "cold_start":
            yield from self.runc.create(args["sandbox_id"], args["code"])
            sandbox = yield from self.runc.start(args["sandbox_id"])
            return sandbox
        if verb == "delete":
            sandbox = yield from self.runc.delete(args["sandbox_id"])
            return sandbox
        raise XpuError(f"executor: unknown command verb {verb!r}")


class ExecutorClient:
    """Molecule's handle on one remote executor.

    Sends commands over the executor's command XPU-FIFO and matches
    replies (pumped by the runtime's reply dispatcher) by request id.
    """

    def __init__(self, shim_home: XpuShim, group: CapGroup, cmd_handle: XpuFifoHandle):
        self.shim_home = shim_home  # shim on Molecule's own PU
        self.group = group          # Molecule's cap group
        self.cmd_handle = cmd_handle
        self._pending: dict[int, Event] = {}
        self._req_ids = itertools.count(1)

    def call(self, verb: str, **args):
        """Generator: send one command and wait for its reply."""
        request_id = next(self._req_ids)
        reply_event = self.shim_home.sim.event()
        self._pending[request_id] = reply_event
        command = Command(request_id=request_id, verb=verb, args=args)
        yield from self.shim_home.xfifo_write(
            self.group, self.cmd_handle, command, COMMAND_BYTES
        )
        result = yield reply_event
        return result

    def resolve(self, request_id: int, result: Any) -> None:
        """Complete a pending call (invoked by the reply dispatcher)."""
        event = self._pending.pop(request_id, None)
        if event is None:
            raise XpuError(f"unexpected executor reply {request_id}")
        event.succeed(result)
