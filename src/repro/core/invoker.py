"""Invocation paths: cold start, warm start, accelerator dispatch (§4.2).

The invoker owns the per-PU warm pools and implements the start paths:

* **warm**: take an idle instance from the pool (cache hit);
* **cfork cold**: fork the PU's template container — locally for the
  host PU, through the executor's nIPC command channel for others;
* **baseline cold**: full container create + runtime boot (what
  Molecule-homo always does);
* **FPGA**: check the resident image for a cached kernel; repack and
  re-program (no-erase) on a miss; DMA the payload in and out.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro import config
from repro.errors import (
    DeadlineExceeded,
    FaultInjectedError,
    HedgeCancelled,
    RegistryError,
    ReliabilityError,
    ReproError,
    RequestShed,
    RetriesExhaustedError,
    SandboxError,
    SchedulingError,
    WorkloadError,
)
from repro.hardware.pu import ProcessingUnit, PuKind
from repro.core.keepalive import WarmPool, make_warm_pool
from repro.core.registry import FunctionDef
from repro.core.reliability import DeadLetter, RetryPolicy
from repro.obs.spans import (
    DetachableTrace,
    NULL_TRACE,
    START_CACHED,
    START_COALESCED,
    START_COLD,
    START_FORK,
    START_HEDGED,
    START_WARM,
)
from repro.sandbox.base import Sandbox, SandboxState
from repro.sandbox.runc import ContainerBackend
from repro.sandbox.runf import FpgaBackend
from repro.sandbox.rung import GpuBackend

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.molecule import MoleculeRuntime


@dataclass
class FunctionInstance:
    """One live (warm or executing) function instance."""

    function: FunctionDef
    pu: ProcessingUnit
    sandbox: Sandbox
    forked: bool
    requests_served: int = 0
    #: Set by the first ``Invoker._destroy`` to claim the teardown.
    #: Several paths can race to destroy one instance (keep-alive
    #: reaper, LRU eviction, dead-corpse reaping in ``_find_warm``,
    #: fault injection); without the claim each would release the
    #: instance's DRAM reservation again, corrupting admission control.
    destroyed: bool = False
    #: True while this instance was forked ahead of demand by the
    #: warm-path pre-warmer and no request has claimed it yet; the
    #: engine's hit/wasted accounting keys on it.
    prewarmed: bool = False

    @property
    def is_first_request(self) -> bool:
        """True before the instance has served anything (COW penalty)."""
        return self.requests_served == 0


@dataclass
class InvocationResult:
    """Timing breakdown of one request."""

    function: str
    request_id: int
    pu_name: str
    #: None for cache-served answers (repro.reuse): no PU ran them.
    pu_kind: Optional[PuKind]
    cold: bool
    startup_s: float
    exec_s: float
    comm_s: float
    total_s: float
    billed_cost: float
    #: Attempts the request took (1 = first attempt succeeded).
    attempts: int = 1
    #: Last transient error retried before success, if any.
    error: Optional[str] = None
    #: True when the request fell back from an accelerator profile to a
    #: general-purpose one because the accelerator was down.
    degraded: bool = False
    #: Sim time at which the gateway admitted the request.
    admitted_s: float = 0.0
    #: Gateway shard that admitted the request (None: unsharded front end).
    shard: Optional[int] = None
    #: True when a hedge clone was launched for this request
    #: (repro.hedging), whichever copy won.
    hedged: bool = False
    #: Which copy answered a hedged request: "primary" or "clone"
    #: (empty when no clone launched).
    hedge_winner: str = ""
    #: Result payload (repro.reuse): set for executions of idempotent
    #: functions with an input key, and for every cache-served answer —
    #: a hit's payload must equal what executing its digest produces.
    payload: Optional[str] = None
    #: "" for executed answers; "fresh" or "stale" when this request
    #: was answered from the result cache (repro.reuse).
    cache: str = ""

    @property
    def total_ms(self) -> float:
        """End-to-end latency in milliseconds."""
        return self.total_s / config.MS

    @property
    def retried(self) -> bool:
        """True if the request needed more than one attempt."""
        return self.attempts > 1


class Invoker:
    """Cold/warm start logic over the runtime's sandbox runtimes."""

    def __init__(
        self,
        runtime: "MoleculeRuntime",
        warm_pool_capacity: int = 4096,
        keep_alive_ttl_s: Optional[float] = None,
        reap_period_s: float = 1.0,
        keepalive_policy: str = "ttl",
    ):
        self.runtime = runtime
        self.pools: dict[int, WarmPool] = {
            pu_id: make_warm_pool(
                keepalive_policy, warm_pool_capacity,
                keep_alive_ttl_s=keep_alive_ttl_s,
            )
            for pu_id in runtime.machine.pus
        }
        self._sandbox_ids = itertools.count(1)
        self.cold_invocations = 0
        self.warm_invocations = 0
        #: Requests served by a coalesced single-flight batch.
        self.coalesced_invocations = 0
        #: Observability hub (lifecycle spans + metrics); None keeps the
        #: invoker instrumentation-free for unit tests.
        self.obs = getattr(runtime, "obs", None)
        #: Reliability wiring (all optional so unit tests can run a bare
        #: runtime): retry policy, per-PU health, dead letters.
        self.retry_policy: RetryPolicy = (
            getattr(runtime, "retry_policy", None) or RetryPolicy()
        )
        self.health = getattr(runtime, "health", None)
        self.dead_letters = getattr(runtime, "dead_letters", None)
        rng = getattr(runtime, "rng", None)
        #: Seeded stream for backoff jitter (None disables jitter).
        self._retry_rng = rng.fork("invoker-retry") if rng is not None else None
        #: Warm-path engine (repro.warmpath); wired by WarmPathEngine
        #: itself.  None keeps every hot path byte-identical to a
        #: runtime without the engine.
        self.engine = None
        #: Hedge policy (repro.hedging); wired by HedgePolicy itself.
        #: None keeps every hot path byte-identical to a runtime
        #: without hedging.
        self.hedging = None
        #: Overload controller (repro.overload); wired by
        #: OverloadController itself.  None keeps every hot path
        #: byte-identical to a runtime without overload control.
        self.overload = None
        #: Result-cache engine (repro.reuse); wired by ReuseEngine
        #: itself.  None keeps every hot path byte-identical to a
        #: runtime without computation reuse.
        self.reuse = None
        self._reaper_wakeup = None
        if keep_alive_ttl_s is not None:
            self.runtime.sim.spawn(
                self._keepalive_reaper(reap_period_s), name="keepalive-reaper"
            )

    def notify_idle(self) -> None:
        """Wake the keep-alive reaper after instances went idle."""
        if self._reaper_wakeup is not None and not self._reaper_wakeup.triggered:
            self._reaper_wakeup.succeed()

    def _keepalive_reaper(self, period_s: float):
        """Daemon: periodically evict instances idle past the TTL (§5
        keep-alive policies).

        Event-driven: while every pool is empty the reaper parks on a
        wakeup event (so an idle simulation can drain); releases call
        :meth:`notify_idle`.  Note that with a TTL configured, running
        the simulation to quiescence ages idle instances past the TTL.
        """
        while True:
            if all(not pool.idle_instances() for pool in self.pools.values()):
                self._reaper_wakeup = self.sim.event()
                yield self._reaper_wakeup
                self._reaper_wakeup = None
            yield self.sim.timeout(period_s)
            reaped = 0
            for pool in self.pools.values():
                for instance in pool.reap_expired(self.sim.now):
                    self.sim.spawn(self._destroy(instance))
                    reaped += 1
            if self.obs is not None:
                self.obs.on_keepalive_reaped(reaped)

    @property
    def sim(self):
        """The runtime's simulator."""
        return self.runtime.sim

    def _next_sandbox_id(self, function: FunctionDef) -> str:
        return f"{function.name}-{next(self._sandbox_ids)}"

    # -- public entry -------------------------------------------------------------

    def invoke(
        self,
        name: str,
        kind: Optional[PuKind] = None,
        pu: Optional[ProcessingUnit] = None,
        force_cold: bool = False,
        payload_bytes: int = 1024,
        exec_time_s: Optional[float] = None,
        deadline_s: Optional[float] = None,
        max_attempts: Optional[int] = None,
        gateway=None,
        overload_bypass: bool = False,
        hedge_policy=None,
        input_key: Optional[str] = None,
    ):
        """Generator: run one request end to end.

        ``exec_time_s`` overrides the function's warm execution model
        for input-dependent workloads (file size, entry count).

        ``gateway`` admits the request through a specific gateway
        (a shard of :class:`repro.loadgen.sharding.ShardedFrontend`)
        instead of the runtime's default front door.

        Transient failures (injected faults, dead sandboxes, exhausted
        capacity) are retried with exponential backoff up to
        ``max_attempts`` (default: the runtime's retry policy); requests
        out of attempts or past their deadline are dead-lettered and
        raise :class:`RetriesExhaustedError` / :class:`DeadlineExceeded`.

        With an overload controller armed, the request additionally
        takes a concurrency slot at its gateway's admission gate after
        gateway admission — it may park in the bounded admission queue
        or be refused outright with :class:`RequestShed` (counted
        ``admitted`` but never retried or dead-lettered).
        ``overload_bypass`` exempts the request from the gate (used for
        half-open breaker probes, which must never be shed).

        ``hedge_policy`` overrides the runtime-wide hedging policy for
        this request (repro.futures: the fan-out engine's straggler
        speculation, whose clone trigger is fired by the gather loop
        instead of a percentile timer).  None keeps the stock behavior.

        ``input_key`` is the request's input identity (repro.reuse):
        with the result cache armed and the function declared
        idempotent, requests sharing a key may be answered from the
        cache without ever taking a gate slot or touching a sandbox.
        Half-open breaker probes (``overload_bypass``) skip the cache —
        a cached answer would starve the probe and pin the breaker.
        """
        function = self.runtime.registry.get(name)
        if pu is not None and kind is None:
            kind = pu.kind
        if kind is not None and not function.supports(kind):
            raise SchedulingError(
                f"function {name!r} has no {kind.value} profile"
            )
        gateway = gateway if gateway is not None else self.runtime.gateway
        hedger = hedge_policy if hedge_policy is not None else self.hedging
        start = self.sim.now
        trace = (
            self.obs.begin_invocation(function.name)
            if self.obs is not None
            else NULL_TRACE
        )
        try:
            admit_span = trace.begin_phase("admit")
            request_id = yield from gateway.admit(deadline_s=deadline_s)
            admitted_s = self.sim.now
            trace.end_phase(admit_span)
            trace.annotate(request_id=request_id)
            if self.engine is not None:
                # Feed the arrival predictor here rather than in the
                # gateway: admission listeners only see a count, and
                # the predictor needs the function identity.
                self.engine.on_admission(function, kind)
            # Cache consult between gateway admission (a hit still
            # counts against ``admitted``) and the overload gate (a hit
            # never burns a concurrency slot).
            reuse = self.reuse
            flight = None
            result = None
            if reuse is not None:
                if overload_bypass:
                    # A half-open breaker's probe must reach a real PU:
                    # a cached answer would starve the probe and pin
                    # the shard's breaker open.
                    reuse.note_bypass(function, "probe")
                else:
                    hit, flight = yield from reuse.lookup(
                        function, input_key, gateway, request_id
                    )
                    if hit is not None:
                        result = self._cached_result(
                            function, request_id, hit, start, trace
                        )
            if result is None:
                overload = self.overload
                slot = None
                try:
                    if overload is not None:
                        # Adaptive admission after gateway admission (so
                        # sheds still count against ``admitted``) and
                        # before the retry loop (so a shed is never
                        # retried or dead-lettered).
                        try:
                            slot = yield from overload.acquire(
                                gateway, function, request_id, trace,
                                bypass=overload_bypass,
                            )
                        except RequestShed as shed:
                            # Shed-to-stale downgrade (repro.reuse): an
                            # old answer beats no answer.  The controller
                            # un-counts the shed so conservation holds
                            # with this request in the answered column.
                            hit = (
                                reuse.shed_fallback(function, input_key)
                                if reuse is not None else None
                            )
                            if hit is None:
                                raise
                            overload.rescind_shed(gateway, shed.reason)
                            result = self._cached_result(
                                function, request_id, hit, start, trace
                            )
                    if result is None:
                        result = yield from self._invoke_with_retries(
                            function, request_id, kind, pu, force_cold,
                            payload_bytes, exec_time_s, start, trace,
                            max_attempts or self.retry_policy.max_attempts,
                            gateway, hedger,
                        )
                        if slot is not None:
                            overload.release(slot, ok=True)
                            slot = None
                        if flight is not None:
                            reuse.fill(
                                flight, function, result, payload_bytes
                            )
                            flight = None
                        elif reuse is not None:
                            reuse.note_executed()
                except BaseException:
                    if slot is not None:
                        overload.release(slot, ok=False)
                    if flight is not None:
                        # A dead leader must never wedge followers: wake
                        # them empty-handed to re-elect.
                        reuse.abort(flight)
                    raise
                if flight is not None:
                    # Shed-to-stale downgrade: flight leadership died
                    # with the gate slot, so followers re-elect (the
                    # stale entry is this request's answer, not theirs).
                    reuse.abort(flight)
                    flight = None
        except RequestShed as exc:
            trace.shed(exc.reason)
            raise
        except Exception as exc:
            trace.fail(type(exc).__name__)
            raise
        result.admitted_s = admitted_s
        trace.finish()
        if hedger is not None and not result.cache:
            # Feed the latency tracker: successful completions are what
            # the percentile (or straggler) trigger is computed over.
            # Cache hits stay out — their near-zero latencies would
            # drag the percentile down and fire hedges on every
            # executed request.
            hedger.observe(function.name, result.total_s)
        return result

    # -- cache-served answers (repro.reuse) --------------------------------------------

    def _cached_result(self, function, request_id, hit, start,
                       trace) -> InvocationResult:
        """Build the result for a request answered from the cache.

        No sandbox ran and no PU core was held, so nothing is charged
        to the billing ledger — near-zero-cost hits are the point of
        memoization.
        """
        self.reuse.note_served(function, hit)
        freshness = "stale" if hit.stale else "fresh"
        trace.annotate(
            pu="cache",
            pu_kind="cache",
            start_kind=START_CACHED,
            cache=freshness,
            cache_reason=hit.reason,
        )
        return InvocationResult(
            function=function.name,
            request_id=request_id,
            pu_name="cache",
            pu_kind=None,
            cold=False,
            startup_s=0.0,
            exec_s=0.0,
            comm_s=0.0,
            total_s=self.sim.now - start,
            billed_cost=0.0,
            payload=hit.entry.payload,
            cache=freshness,
        )

    # -- retry / deadline loop -------------------------------------------------------

    def _invoke_with_retries(
        self, function, request_id, kind, pu, force_cold,
        payload_bytes, exec_time_s, start, trace, max_attempts,
        gateway=None, hedger=None,
    ):
        """Generator: drive attempts until success, exhaustion or
        deadline.

        Each attempt runs as its own process raced against the request
        deadline.  When the deadline fires first the attempt is
        *orphaned*, not interrupted: it finishes in the background so
        every resource it holds (cores, DRAM, pool slots) is released
        through the normal paths, while its trace proxy is detached so
        it can no longer touch this request's span tree.
        """
        gateway = gateway if gateway is not None else self.runtime.gateway
        deadline_at = gateway.deadline_for(request_id)
        errors: list[str] = []
        attempts = 0
        degraded_any = False
        while True:
            if deadline_at is not None and self.sim.now >= deadline_at:
                self._expire(function, request_id, attempts, errors)
            attempts += 1
            dispatch_kind = kind or function.profiles[0]
            attempt_kind, degraded = self._effective_kind(function, dispatch_kind)
            if degraded:
                degraded_any = True
                if self.obs is not None:
                    self.obs.on_degraded(
                        function.name, dispatch_kind.value, attempt_kind.value
                    )
                trace.annotate(degraded=True)
            shield = DetachableTrace(trace)
            attempt_info: dict = {}
            attempt_kind_arg = attempt_kind if degraded else kind
            attempt_pu_arg = None if degraded else pu
            if hedger is not None and hedger.eligible(
                function, attempt_kind_arg, attempt_kind,
                attempt_pu_arg, force_cold,
            ):
                attempt_gen = self._hedged_attempt(
                    function, request_id, attempt_kind_arg, attempt_pu_arg,
                    force_cold, payload_bytes, exec_time_s, start,
                    shield, attempt_info, hedger,
                )
            else:
                attempt_gen = self._attempt(
                    function, request_id, attempt_kind_arg, attempt_pu_arg,
                    force_cold, payload_bytes, exec_time_s, start,
                    shield, attempt_info,
                )
            proc = self.sim.spawn(
                attempt_gen,
                name=f"attempt:{function.name}#{request_id}.{attempts}",
            )
            race = proc
            if deadline_at is not None:
                race = self.sim.any_of(
                    [proc, self.sim.timeout(deadline_at - self.sim.now)]
                )
            try:
                yield race
            except Exception as exc:  # the attempt failed
                failure = exc
            else:
                if proc.triggered and proc.ok:
                    result: InvocationResult = proc.value
                    result.attempts = attempts
                    result.degraded = degraded_any
                    result.error = errors[-1] if errors else None
                    if attempts > 1:
                        trace.annotate(attempts=attempts)
                    used = attempt_info.get("pu")
                    if self.health is not None and used is not None:
                        self.health.record_success(used)
                    return result
                # The deadline fired first: orphan the attempt.
                shield.detach()
                trace.unwind()
                self._expire(function, request_id, attempts, errors)
            # -- transient or terminal failure --------------------------------------
            trace.unwind()
            errors.append(f"{type(failure).__name__}: {failure}")
            used = attempt_info.get("pu")
            if self.health is not None and used is not None:
                self.health.record_failure(used)
            if not self._retryable(failure):
                self._dead_letter(function, request_id, attempts, errors, "error")
                raise failure
            if attempts >= max_attempts:
                self._dead_letter(
                    function, request_id, attempts, errors, "retries_exhausted"
                )
                raise RetriesExhaustedError(
                    f"request {request_id} for {function.name!r} failed "
                    f"{attempts} attempt(s): {errors[-1]}",
                    attempts=attempts,
                    errors=errors,
                )
            if self.obs is not None:
                self.obs.on_retry(function.name, type(failure).__name__)
            backoff = self.retry_policy.backoff_s(attempts, self._retry_rng)
            if deadline_at is not None:
                backoff = min(backoff, max(0.0, deadline_at - self.sim.now))
            retry_span = trace.begin_phase(
                "retry", attempt=attempts, error=type(failure).__name__
            )
            yield self.sim.timeout(backoff)
            trace.end_phase(retry_span)

    def _attempt(
        self, function, request_id, kind, pu, force_cold,
        payload_bytes, exec_time_s, start, trace, attempt_info,
        hedge=None,
    ):
        """Generator: one attempt at serving the request."""
        if (kind or function.profiles[0]) in (PuKind.FPGA, PuKind.GPU):
            result = yield from self._invoke_accelerated(
                function, request_id, kind or function.profiles[0],
                payload_bytes, exec_time_s, start, trace, attempt_info,
            )
        else:
            result = yield from self._invoke_general(
                function, request_id, kind, pu, force_cold,
                payload_bytes, exec_time_s, start, trace, attempt_info,
                hedge,
            )
        return result

    # -- hedged attempts (repro.hedging) -----------------------------------------------

    def _hedged_attempt(
        self, function, request_id, kind, pu, force_cold,
        payload_bytes, exec_time_s, start, shield, attempt_info,
        hedger=None,
    ):
        """Generator: one attempt, hedged.

        Runs the primary copy normally, arms the percentile trigger,
        and — if the primary is still in flight when it fires — launches
        a clone onto a healthy PU distinct from the primary's.  The
        first copy to complete answers; the loser tears itself down at
        its next cancellation checkpoint inside :meth:`_invoke_general`.
        """
        hedger = hedger if hedger is not None else self.hedging
        state = hedger.begin(function, request_id)
        state.pending = 1
        primary_info: dict = {}
        # The primary writes its spans through its own severable proxy:
        # if the clone wins, the primary is detached exactly like a
        # deadline-orphaned attempt, and keeps running only to release
        # its resources through the normal paths.
        primary_shield = DetachableTrace(shield)
        self.sim.spawn(
            self._hedge_copy(
                state, "primary", function, request_id, kind, pu,
                force_cold, payload_bytes, exec_time_s, start,
                primary_shield, primary_info, hedger,
            ),
            name=f"hedge-primary:{function.name}#{request_id}",
        )
        # Phase 1: primary vs the clone trigger — the percentile timer,
        # or an externally fired event (repro.futures straggler gather).
        waiter = state.arm(self.sim)
        trigger = (
            state.trigger_event
            if state.trigger_event is not None
            else self.sim.timeout(state.trigger_s)
        )
        yield self.sim.any_of([waiter, trigger])
        state.disarm()
        if state.winner is None and not state.failures:
            # Trigger fired with the primary still in flight: clone it.
            primary_pu = primary_info.get("pu") or state.pu_hint
            if hedger.fire(state, function, kind, primary_pu):
                clone_info: dict = {}
                self.sim.spawn(
                    self._hedge_copy(
                        state, "clone", function, request_id, kind, None,
                        force_cold, payload_bytes, exec_time_s, start,
                        NULL_TRACE, clone_info, hedger,
                    ),
                    name=f"hedge-clone:{function.name}#{request_id}",
                )
        # Phase 2: first completed copy wins; all copies failing loses.
        while state.winner is None:
            if state.pending == 0:
                raise state.failures[-1]
            waiter = state.arm(self.sim)
            yield waiter
            state.disarm()
        tag, result, info = state.winner
        attempt_info.update(info)
        if tag == "clone":
            # The primary lost: sever its span proxy, close its
            # dangling phase spans, and restamp the root with the
            # clone's identity.
            primary_shield.detach()
            shield.unwind()
            shield.annotate(
                pu=result.pu_name,
                pu_kind=result.pu_kind.value,
                start_kind=START_HEDGED,
            )
        if state.fired:
            result.hedged = True
            result.hedge_winner = tag
            shield.annotate(hedged=True)
        return result

    def _hedge_copy(
        self, state, tag, function, request_id, kind, pu, force_cold,
        payload_bytes, exec_time_s, start, trace, attempt_info,
        hedger=None,
    ):
        """Generator: one copy (primary or clone) of a hedged attempt.

        Wraps :meth:`_attempt` so the underlying process never fails
        unwaited: errors and cancellations are absorbed into the shared
        :class:`_HedgeState` and surfaced to the join loop via
        ``notify``.
        """
        hedger = hedger if hedger is not None else self.hedging
        try:
            result = yield from self._attempt(
                function, request_id, kind, pu, force_cold, payload_bytes,
                exec_time_s, start, trace, attempt_info, hedge=(state, tag),
            )
        except HedgeCancelled as exc:
            state.pending -= 1
            hedger.on_cancelled(state, tag, attempt_info, exc.wasted_s)
            state.notify()
            return
        except ReproError as exc:
            state.pending -= 1
            if state.lost(tag):
                # The loser died on its own (e.g. its PU crashed after
                # the winner answered): nothing further to account.
                hedger.on_cancelled(state, tag, attempt_info, 0.0)
            else:
                state.failures.append(exc)
                used = attempt_info.get("pu")
                if self.health is not None and used is not None:
                    self.health.record_failure(used)
            state.notify()
            return
        state.pending -= 1
        if state.claim(tag, result, attempt_info):
            hedger.on_won(state, tag, result)
        else:
            # Ran to completion without hitting a checkpoint after the
            # winner claimed (defensive: the general-purpose path always
            # checkpoints before responding).
            hedger.on_loser_completed(state, tag, result)
        state.notify()

    def _hedge_lost(self, hedge) -> bool:
        """True when this copy's race is already lost (cancel now)."""
        return hedge is not None and hedge[0].lost(hedge[1])

    def _hedge_exclude(self, hedge):
        """The PU this copy must avoid (clone anti-affinity), or None."""
        if hedge is not None and hedge[1] == "clone":
            return hedge[0].exclude
        return None

    def _release_instance(self, instance: FunctionInstance) -> None:
        """Return a no-longer-needed instance through the normal path:
        the warm-path engine may recycle it into a parked coalesced
        follower; otherwise it goes back to its PU's pool."""
        engine = self.engine
        if engine is None or not engine.offer_released(instance):
            evicted = self.pools[instance.pu.pu_id].release(
                instance, now=self.sim.now
            )
            self.notify_idle()
            for old in evicted:
                self.sim.spawn(self._destroy(old))

    #: Error classes that must never be retried: terminal reliability
    #: outcomes and misconfigurations a retry cannot fix.
    _TERMINAL_ERRORS = (ReliabilityError, RegistryError, WorkloadError)

    def _retryable(self, exc: BaseException) -> bool:
        """True for transient library errors worth another attempt."""
        return isinstance(exc, ReproError) and not isinstance(
            exc, self._TERMINAL_ERRORS
        )

    def _effective_kind(self, function, dispatch_kind):
        """Resolve graceful degradation: when every PU of an accelerator
        kind is unavailable — or the overload controller's brownout is
        active — and the function also carries a fallback profile, run
        on that profile's kind instead.

        The brownout falls back to the *host CPU* profile for any
        non-CPU dispatch (accelerators and DPUs alike): during
        saturation the cheap offload PUs are usually the ones drowning,
        and answering on pricier host cores beats not answering.
        """
        if (self.overload is not None
                and dispatch_kind is not PuKind.CPU
                and self.overload.degrade_accelerated()
                and function.supports(PuKind.CPU)):
            self.overload.note_degraded()
            return PuKind.CPU, True
        if dispatch_kind.general_purpose:
            return dispatch_kind, False
        if self.health is None:
            return dispatch_kind, False
        pus = self.runtime.machine.pus_of_kind(dispatch_kind)
        if any(self.health.available(pu) for pu in pus):
            return dispatch_kind, False
        for fallback in function.profiles:
            if fallback.general_purpose:
                return fallback, True
        return dispatch_kind, False

    def _note_pu(self, attempt_info: Optional[dict], pu: ProcessingUnit) -> None:
        """Record the PU an attempt targets (breaker attribution +
        half-open probe claiming + crash-epoch snapshot)."""
        if attempt_info is None:
            return
        attempt_info["pu"] = pu
        if self.health is not None:
            attempt_info["epoch"] = self.health.epoch(pu)
            self.health.begin_attempt(pu)

    def _pu_down(self, pu: ProcessingUnit) -> bool:
        """True while an injected crash holds this PU down."""
        return self.health is not None and self.health.is_down(pu)

    def _crashed_during(
        self, pu: ProcessingUnit, attempt_info: Optional[dict]
    ) -> bool:
        """True if ``pu`` crashed while this attempt was on it.

        Compares against the crash epoch snapshotted when the attempt
        targeted the PU, so a crash followed by a reboot before the
        attempt finished is still detected.
        """
        if self.health is None:
            return False
        if self.health.is_down(pu):
            return True
        if attempt_info is not None and "epoch" in attempt_info:
            return self.health.epoch(pu) != attempt_info["epoch"]
        return False

    def _expire(self, function, request_id, attempts, errors):
        """Dead-letter a request that ran out of deadline and raise."""
        if self.obs is not None:
            self.obs.on_deadline_exceeded(function.name)
        self._dead_letter(function, request_id, attempts, errors, "deadline")
        raise DeadlineExceeded(
            f"request {request_id} for {function.name!r} exceeded its "
            f"deadline after {attempts} attempt(s)"
        )

    def _dead_letter(self, function, request_id, attempts, errors, reason):
        """Park a terminally failed request in the dead-letter queue."""
        if self.dead_letters is not None:
            self.dead_letters.push(DeadLetter(
                request_id=request_id,
                function=function.name,
                attempts=attempts,
                errors=tuple(errors),
                enqueued_at=self.sim.now,
                reason=reason,
            ))
        if self.obs is not None:
            self.obs.on_dead_letter(function.name, reason)

    # -- CPU/DPU path -----------------------------------------------------------------

    def _find_warm(self, function: FunctionDef, kind, pu, exclude=None):
        candidates = (
            [pu]
            if pu is not None
            else self.runtime.scheduler.candidates(function, kind)
        )
        for candidate in candidates:
            if candidate is exclude:
                continue
            pool = self.pools[candidate.pu_id]
            while True:
                instance = pool.acquire(function.name)
                if instance is None:
                    break
                if self._is_alive(instance):
                    if self.engine is not None:
                        self.engine.on_warm_acquire(instance)
                    return instance
                # A crashed instance was cached: reap it and keep looking
                # (failure robustness - a dead sandbox must never serve).
                self.sim.spawn(self._destroy(instance))
        return None

    def _is_alive(self, instance: FunctionInstance) -> bool:
        """True unless the instance's backing compute has died.

        Dispatches on the backend type so every runtime gets a real
        liveness check: runc by container process, runf by kernel
        residency on a healthy device, runG by CUDA context validity.
        """
        sandbox = instance.sandbox
        if sandbox.state is SandboxState.DELETED:
            return False
        backend = sandbox.backend
        if isinstance(backend, ContainerBackend):
            return backend.process is None or backend.process.alive
        if isinstance(backend, FpgaBackend):
            runf = self.runtime.runfs.get(instance.pu.pu_id)
            return (
                runf is not None
                and runf.device.has_kernel(backend.instance.kernel.name)
            )
        if isinstance(backend, GpuBackend):
            rung = self.runtime.rungs.get(instance.pu.pu_id)
            return rung is not None and rung.context_ready
        process = getattr(backend, "process", None)
        return process is None or process.alive

    def _invoke_general(
        self, function, request_id, kind, pu, force_cold,
        payload_bytes, exec_time_s, start, trace=NULL_TRACE,
        attempt_info: Optional[dict] = None, hedge=None,
    ):
        exclude = self._hedge_exclude(hedge)
        startup_begin = self.sim.now
        schedule_span = trace.begin_phase("schedule")
        instance = (
            None if force_cold else self._find_warm(function, kind, pu, exclude)
        )
        coalesced = False
        engine = self.engine
        if instance is None and engine is not None and not force_cold:
            # Single-flight coalescing: a miss with a batch already in
            # flight for this (function, PU) parks on it instead of
            # paying an independent cold start.  Woken empty-handed
            # (the batch closed before reaching us), re-check the pool
            # — requests that completed meanwhile released instances —
            # then look for a fresh batch; no open batch left means
            # this request becomes the next leader below.
            while instance is None:
                if self._hedge_lost(hedge):
                    raise HedgeCancelled()
                batch = engine.joinable_batch(function, kind, pu, exclude)
                if batch is None:
                    break
                if hedge is not None:
                    # A parked follower has no placement yet; remember
                    # the batch's PU so a later trigger can hedge away
                    # from it.
                    hedge[0].pu_hint = self.runtime.machine.pus[batch.key[1]]
                waiter = batch.join(self.sim)
                engine.on_follower_joined(batch)
                yield waiter
                if self._hedge_lost(hedge):
                    # Answered by the other copy while parked.  A
                    # delivered instance goes straight back through the
                    # release path so the batch's recycle chain keeps
                    # moving (no dangling parked-follower queue).
                    if waiter.value is not None:
                        self._release_instance(waiter.value)
                    raise HedgeCancelled()
                if waiter.value is not None:
                    instance = waiter.value
                    coalesced = True
                else:
                    instance = self._find_warm(function, kind, pu, exclude)
        cold = instance is None
        if cold:
            if self._hedge_lost(hedge):
                raise HedgeCancelled()
            target = pu or self.runtime.scheduler.place(
                function, kind, exclude=exclude
            )
            if attempt_info is not None:
                self._note_pu(attempt_info, target)
            schedule_span.attributes["pu"] = target.name
            trace.end_phase(schedule_span)
            sandbox_span = trace.begin_phase("sandbox_start")
            batch = (
                engine.open_batch(function, target)
                if engine is not None and not force_cold
                else None
            )
            try:
                instance = yield from self._cold_start(function, target, trace)
            except BaseException:
                if batch is not None:
                    engine.abort_batch(batch)
                raise
            sandbox_span.attributes["forked"] = instance.forked
            trace.end_phase(sandbox_span)
            self.cold_invocations += 1
            if self._crashed_during(target, attempt_info):
                # The PU crashed mid-cold-start: the instance is gone.
                if batch is not None:
                    engine.abort_batch(batch)
                self.sim.spawn(self._destroy(instance))
                raise FaultInjectedError(
                    f"{target.name} crashed during cold start of "
                    f"{function.name!r}"
                )
            if batch is not None:
                engine.leader_done(batch, function, target)
        else:
            if attempt_info is not None:
                self._note_pu(attempt_info, instance.pu)
            schedule_span.attributes["pu"] = instance.pu.name
            trace.end_phase(schedule_span)
            if coalesced:
                self.coalesced_invocations += 1
                engine.on_coalesced_start(function.name)
            else:
                self.warm_invocations += 1
        startup_s = self.sim.now - startup_begin
        if self._hedge_lost(hedge):
            # Cancelled after startup but before executing: the loser's
            # instance goes straight back (warm, unused) — a cold-started
            # clone instance becomes warm stock for later requests.
            self._release_instance(instance)
            raise HedgeCancelled()
        start_kind = (
            START_COALESCED if coalesced
            else START_WARM if not cold
            else START_FORK if instance.forked
            else START_COLD
        )
        trace.annotate(
            pu=instance.pu.name,
            pu_kind=instance.pu.kind.value,
            start_kind=start_kind,
        )
        exec_span = trace.begin_phase("exec", pu=instance.pu.name)

        exec_begin = self.sim.now
        if cold and function.code.data_ms:
            # Cold-path data preparation no startup optimisation removes.
            yield self.sim.timeout(function.code.data_ms * config.MS)
        if instance.forked and instance.is_first_request:
            runc = self.runtime.runc_on(instance.pu.pu_id)
            yield self.sim.timeout(runc.first_request_penalty())
        duration = (
            exec_time_s
            if exec_time_s is not None
            else function.work.exec_time(instance.pu)
        )
        # Execution occupies one of the PU's cores: concurrent requests
        # beyond the core count queue (real vertical-scaling pressure).
        core = instance.pu.cores.request()
        yield core
        instance.pu.clock.mark_busy()
        yield self.sim.timeout(duration)
        instance.pu.clock.mark_idle()
        instance.pu.cores.release(core)
        instance.requests_served += 1
        exec_s = self.sim.now - exec_begin
        trace.end_phase(exec_span)

        if self._crashed_during(instance.pu, attempt_info) or not self._is_alive(
            instance
        ):
            # The PU crashed (or the sandbox was killed) while this
            # request ran on it: the response is lost with the PU.
            self.sim.spawn(self._destroy(instance))
            raise FaultInjectedError(
                f"{instance.pu.name} failed while executing "
                f"{function.name!r}"
            )
        if self._hedge_lost(hedge):
            # The other copy answered while this one executed: charge
            # the discarded work as hedge waste, recycle the instance,
            # and abort without responding (no duplicate answer).
            policy = hedge[0].policy or self.hedging
            policy.charge_waste(request_id, function, instance.pu, exec_s)
            self._release_instance(instance)
            raise HedgeCancelled(wasted_s=exec_s)

        respond_span = trace.begin_phase("respond")
        self._release_instance(instance)
        trace.end_phase(respond_span)
        return self._result(
            function, request_id, instance.pu, cold, startup_s, exec_s, 0.0, start
        )

    def _cold_start(self, function: FunctionDef, pu: ProcessingUnit,
                    trace=NULL_TRACE):
        """Generator: create a new instance on ``pu`` (cfork preferred)."""
        runc = self.runtime.runc_on(pu.pu_id)
        sandbox_id = self._next_sandbox_id(function)
        use_cfork = (
            self.runtime.use_cfork
            and runc.template_for(function.code) is not None
        )
        client = self.runtime.executor_client(pu.pu_id)
        if use_cfork:
            if client is None:  # Molecule's own PU: local cfork
                sandbox = yield from runc.cfork(sandbox_id, function.code)
            else:  # neighbour PU: command over nIPC
                nipc_span = trace.begin_phase(
                    "nipc", transport="xpu-fifo", target=pu.name, verb="cfork"
                )
                sandbox = yield from client.call(
                    "cfork", sandbox_id=sandbox_id, code=function.code
                )
                trace.end_phase(nipc_span)
        else:
            if client is None:
                yield from runc.create(sandbox_id, function.code)
                sandbox = yield from runc.start(sandbox_id)
            else:
                nipc_span = trace.begin_phase(
                    "nipc", transport="xpu-fifo", target=pu.name, verb="cold_start"
                )
                sandbox = yield from client.call(
                    "cold_start", sandbox_id=sandbox_id, code=function.code
                )
                trace.end_phase(nipc_span)
        return FunctionInstance(
            function=function, pu=pu, sandbox=sandbox, forked=use_cfork
        )

    def _destroy(self, instance: FunctionInstance):
        """Generator: tear down an evicted instance and free memory.

        Idempotent: the first caller claims the teardown; later calls
        (a reaper and an eviction racing on the same instance) are
        no-ops, so the DRAM reservation is released exactly once.
        """
        if instance.destroyed:
            return
        instance.destroyed = True
        if self.engine is not None:
            self.engine.on_instance_destroyed(instance)
        runc = self.runtime.runc_on(instance.pu.pu_id)
        if instance.sandbox.state is not SandboxState.DELETED:
            try:
                yield from runc.delete(instance.sandbox.sandbox_id)
            except SandboxError:
                # A crash already reaped the sandbox out from under us.
                pass
        self.runtime.scheduler.release(instance.function, instance.pu)

    # -- accelerator path ---------------------------------------------------------------

    def _invoke_accelerated(
        self, function, request_id, kind, payload_bytes, exec_time_s, start,
        trace=NULL_TRACE, attempt_info: Optional[dict] = None,
    ):
        if kind is PuKind.FPGA:
            result = yield from self._invoke_fpga(
                function, request_id, payload_bytes, exec_time_s, start,
                trace, attempt_info,
            )
            return result
        result = yield from self._invoke_gpu(
            function, request_id, payload_bytes, exec_time_s, start,
            trace, attempt_info,
        )
        return result

    def _transfer(self, pu: ProcessingUnit, nbytes: int, trace=NULL_TRACE,
                  direction: str = "in"):
        """Generator: DMA a payload between the host and an accelerator."""
        span = trace.begin_phase(
            "nipc", transport="dma", target=pu.name, direction=direction
        )
        host = pu.host_pu or self.runtime.machine.host_cpu
        route = self.runtime.machine.route(host, pu)
        yield self.sim.timeout(route.transfer_time(nbytes))
        yield self.sim.timeout(host.copy_time(nbytes))
        trace.end_phase(span)

    def _choose_fpga(self, function):
        """Pick the FPGA for a request: a device already caching the
        kernel wins (warm start); otherwise the device whose image was
        programmed least recently is repacked.  With 8 F1 devices and
        12-instance images this caches 96 instances machine-wide (§6.4).
        """
        candidates = self.runtime.scheduler.candidates(function, PuKind.FPGA)
        if not candidates:
            raise SchedulingError(f"no FPGA can host {function.name!r}")
        for pu in candidates:
            runf = self.runtime.runf_on(pu.pu_id)
            if runf.cached_sandbox_for(function.name) is not None:
                return pu
        if self.engine is not None:
            # Never repack a device the engine is mid-programming
            # (bitstream prefetch) while an idle one exists.
            free = [
                pu for pu in candidates
                if pu.pu_id not in self.engine._prefetch_inflight
            ]
            if free:
                candidates = free
        return min(
            candidates,
            key=lambda pu: self.runtime.runf_on(pu.pu_id).device.program_count,
        )

    def _invoke_fpga(self, function, request_id, payload_bytes, exec_time_s,
                     start, trace=NULL_TRACE, attempt_info: Optional[dict] = None):
        schedule_span = trace.begin_phase("schedule")
        if self.engine is not None:
            # A device mid-programming an image that includes this
            # kernel: wait for that instead of repacking another one.
            yield from self.engine.join_bitstream_prefetch(function)
        pu = self._choose_fpga(function)
        if attempt_info is not None:
            self._note_pu(attempt_info, pu)
        schedule_span.attributes["pu"] = pu.name
        trace.end_phase(schedule_span)
        runf = self.runtime.runf_on(pu.pu_id)
        startup_begin = self.sim.now
        sandbox = runf.cached_sandbox_for(function.name)
        cold = sandbox is None
        if self.engine is not None:
            self.engine.note_fpga_start(function.name, pu.pu_id, cold)
        sandbox_span = trace.begin_phase("sandbox_start")
        if cold:
            # Repack the image: keep resident-hot kernels, add this one.
            predicted = [function.name] + [
                n for n in runf.resident_function_ids if n != function.name
            ]
            plan = self.runtime.image_planner.plan(predicted)
            entries = []
            for fn_name in plan.func_names:
                fn = self.runtime.registry.get(fn_name)
                for copy in range(plan.copies_each):
                    entries.append(
                        (f"{fn_name}-v{next(self._sandbox_ids)}", fn.code)
                    )
            yield from runf.create_vector(entries)
            sandbox = runf.cached_sandbox_for(function.name)
            self.cold_invocations += 1
        else:
            self.warm_invocations += 1
        if sandbox.state is SandboxState.CREATED:
            yield from runf.start(sandbox.sandbox_id)
        trace.end_phase(sandbox_span)
        startup_s = self.sim.now - startup_begin
        trace.annotate(
            pu=pu.name, pu_kind=pu.kind.value,
            start_kind=START_COLD if cold else START_WARM,
        )

        exec_begin = self.sim.now
        exec_span = trace.begin_phase("exec", pu=pu.name)
        yield from self._transfer(pu, payload_bytes, trace, "in")  # args in
        duration = (
            exec_time_s
            if exec_time_s is not None
            else function.work.exec_time(pu)
        )
        yield from runf.invoke(sandbox.sandbox_id, exec_time_s=duration)
        yield from self._transfer(pu, payload_bytes, trace, "out")  # results out
        trace.end_phase(exec_span)
        exec_s = self.sim.now - exec_begin
        if self._crashed_during(pu, attempt_info):
            # The FPGA crashed while this request was on it.
            raise FaultInjectedError(
                f"{pu.name} failed while executing {function.name!r}"
            )
        return self._result(
            function, request_id, pu, cold, startup_s, exec_s, 0.0, start
        )

    def _invoke_gpu(self, function, request_id, payload_bytes, exec_time_s,
                    start, trace=NULL_TRACE, attempt_info: Optional[dict] = None):
        schedule_span = trace.begin_phase("schedule")
        pu = self.runtime.scheduler.place(function, PuKind.GPU)
        if attempt_info is not None:
            self._note_pu(attempt_info, pu)
        schedule_span.attributes["pu"] = pu.name
        trace.end_phase(schedule_span)
        rung = self.runtime.rung_on(pu.pu_id)
        startup_begin = self.sim.now
        sandbox_id = f"gpu-{function.name}"
        sandbox_span = trace.begin_phase("sandbox_start")
        try:
            sandbox = rung.get(sandbox_id)
            cold = False
            self.warm_invocations += 1
        except SandboxError:
            yield from rung.create(sandbox_id, function.code)
            sandbox = yield from rung.start(sandbox_id)
            cold = True
            self.cold_invocations += 1
        trace.end_phase(sandbox_span)
        startup_s = self.sim.now - startup_begin
        trace.annotate(
            pu=pu.name, pu_kind=pu.kind.value,
            start_kind=START_COLD if cold else START_WARM,
        )
        exec_begin = self.sim.now
        exec_span = trace.begin_phase("exec", pu=pu.name)
        yield from self._transfer(pu, payload_bytes, trace, "in")
        duration = (
            exec_time_s
            if exec_time_s is not None
            else function.work.exec_time(pu)
        )
        yield from rung.invoke(sandbox_id, exec_time_s=duration)
        yield from self._transfer(pu, payload_bytes, trace, "out")
        trace.end_phase(exec_span)
        exec_s = self.sim.now - exec_begin
        if self._crashed_during(pu, attempt_info):
            # The GPU crashed while this request was on it.
            raise FaultInjectedError(
                f"{pu.name} failed while executing {function.name!r}"
            )
        return self._result(
            function, request_id, pu, cold, startup_s, exec_s, 0.0, start
        )

    # -- result assembly ----------------------------------------------------------------

    def _result(
        self, function, request_id, pu, cold, startup_s, exec_s, comm_s, start
    ) -> InvocationResult:
        total_s = self.sim.now - start
        entry = self.runtime.ledger.charge(request_id, function.name, pu, exec_s)
        cost = entry.cost
        return InvocationResult(
            function=function.name,
            request_id=request_id,
            pu_name=pu.name,
            pu_kind=pu.kind,
            cold=cold,
            startup_s=startup_s,
            exec_s=exec_s,
            comm_s=comm_s,
            total_s=total_s,
            billed_cost=cost,
        )
