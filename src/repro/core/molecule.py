"""The Molecule runtime facade (§4).

Wires the whole system together on one heterogeneous computer:

* an :class:`OsInstance` per general-purpose PU (multi-OS),
* the XPU-Shim cluster with a shim per PU (virtual for accelerators),
* a ``runc`` runtime per CPU/DPU, ``runf`` per FPGA, ``runG`` per GPU,
* executors xSpawn-ed onto every non-host PU, commanded over nIPC,
* the gateway, scheduler, invoker, and DAG engine.

Typical use::

    molecule = MoleculeRuntime.create(num_dpus=2)
    molecule.deploy_now(function)
    result = molecule.invoke_now(function.name)
"""

from __future__ import annotations

from typing import Optional

from repro import config
from repro.errors import SchedulingError, XpuError
from repro.hardware.machine import (
    HeterogeneousComputer,
    build_cpu_dpu_machine,
)
from repro.hardware.pu import ProcessingUnit, PuKind
from repro.multios.cgroup import CpusetLockMode
from repro.multios.os import OsInstance
from repro.core.billing import BillingLedger
from repro.core.dag import Chain, DagEngine
from repro.core.executor import Executor, ExecutorClient, REPLY_BYTES
from repro.core.gateway import ApiGateway
from repro.core.invoker import Invoker
from repro.core.keepalive import FpgaImagePlanner
from repro.core.registry import FunctionDef, FunctionRegistry
from repro.core.reliability import (
    BREAKER_STATE_VALUE,
    DeadLetterQueue,
    HealthRegistry,
    RetryPolicy,
)
from repro.core.scheduler import Scheduler
from repro.obs import Observability
from repro.sandbox.runc import RuncRuntime
from repro.sandbox.runf import RunfRuntime
from repro.sandbox.rung import RungRuntime
from repro.sim import Simulator
from repro.sim.rng import SeededRng
from repro.xpu.capability import Permission
from repro.xpu.fifo import FifoEnd
from repro.xpu.shim import ShimCluster


class MoleculeRuntime:
    """One Molecule deployment on one worker machine."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        machine: Optional[HeterogeneousComputer] = None,
        use_cfork: bool = True,
        cpuset_opt: bool = True,
        no_erase: bool = True,
        warm_pool_capacity: int = 4096,
        keep_alive_ttl_s: Optional[float] = None,
        keepalive_policy: str = "ttl",
        prefer_cheapest: bool = False,
        obs: Optional[Observability] = None,
        seed: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        default_deadline_s: Optional[float] = None,
        fault_plan=None,
        warmpath=None,
        hedging=None,
        overload=None,
        fanout=None,
        reuse=None,
    ):
        self.sim = sim or Simulator()
        self.machine = machine or build_cpu_dpu_machine(self.sim, num_dpus=2)
        self.use_cfork = use_cfork
        self.registry = FunctionRegistry()
        self.ledger = BillingLedger()
        #: The observability hub every component reports through.
        self.obs = obs or Observability(self.sim)
        #: Deterministic randomness root; reliability and fault injection
        #: fork named sub-streams so runs with the same seed are
        #: byte-identical.
        self.rng = SeededRng(seed if seed is not None else config.default_seed())
        self.retry_policy = retry_policy or RetryPolicy()
        self.dead_letters = DeadLetterQueue(obs=self.obs)
        self.health = HealthRegistry(self.sim, obs=self.obs)
        self.gateway = ApiGateway(
            self.sim, obs=self.obs, default_deadline_s=default_deadline_s
        )
        self.scheduler = Scheduler(
            self.machine,
            prefer_cheapest=prefer_cheapest,
            obs=self.obs,
            health=self.health,
        )
        self.image_planner = FpgaImagePlanner()
        self.image_planner.obs = self.obs
        self.cluster = ShimCluster(self.sim, self.machine, obs=self.obs)

        lock = CpusetLockMode.MUTEX if cpuset_opt else CpusetLockMode.SEMAPHORE
        self.oses: dict[int, OsInstance] = {}
        self.runcs: dict[int, RuncRuntime] = {}
        self.runfs: dict[int, RunfRuntime] = {}
        self.rungs: dict[int, RungRuntime] = {}
        for pu in self.machine.general_purpose_pus():
            os_instance = OsInstance(self.sim, pu, cpuset_lock=lock)
            self.oses[pu.pu_id] = os_instance
            self.cluster.install(pu, os_instance)
            runc = RuncRuntime(self.sim, os_instance)
            runc.obs = self.obs
            self.runcs[pu.pu_id] = runc
        host = self.machine.host_cpu
        host_shim = self.cluster.shim_on(host.pu_id)
        for pu in self.machine.pus.values():
            if pu.is_general_purpose:
                continue
            self.cluster.install_virtual(pu, host_shim)
            if pu.kind is PuKind.FPGA:
                device = self.machine.fpga_device(pu)
                runf = RunfRuntime(self.sim, device, no_erase=no_erase)
                runf.obs = self.obs
                self.runfs[pu.pu_id] = runf
            elif pu.kind is PuKind.GPU:
                rung = RungRuntime(self.sim, pu)
                rung.obs = self.obs
                self.rungs[pu.pu_id] = rung

        #: Molecule's own CAP_Group (the runtime process on the host).
        self.group = self.cluster.register_process(host.pu_id, name="molecule")
        self.invoker = Invoker(
            self,
            warm_pool_capacity=warm_pool_capacity,
            keep_alive_ttl_s=keep_alive_ttl_s,
            keepalive_policy=keepalive_policy,
        )
        self.dag = DagEngine(self)
        self._executors: dict[int, Executor] = {}
        self._clients: dict[int, ExecutorClient] = {}
        self._booted = False
        #: Optional sharded gateway front end (repro.loadgen.sharding);
        #: installed by :meth:`sharded_frontend` or by constructing a
        #: ShardedFrontend over this runtime.
        self.frontend = None
        #: Optional deterministic fault injection (repro.faults).
        self.fault_plan = fault_plan
        self.injector = None
        if fault_plan is not None:
            from repro.faults.injector import FaultInjector

            self.injector = FaultInjector(self, fault_plan)
        #: Optional warm-path engine (repro.warmpath): cold-start
        #: coalescing, predictive pre-warm, bitstream prefetch.  Pass a
        #: WarmPathConfig (or True for defaults); None leaves the stock
        #: byte-identical behavior.
        self.warmpath = None
        if warmpath is not None:
            from repro.warmpath import WarmPathConfig, WarmPathEngine

            config_obj = (
                WarmPathConfig() if warmpath is True else warmpath
            )
            self.warmpath = WarmPathEngine(self, config_obj)
        #: Optional tail-latency hedging engine (repro.hedging): clones
        #: straggling requests onto a second healthy PU and takes the
        #: first answer.  Pass a HedgeConfig (or True for defaults);
        #: None leaves the stock byte-identical behavior.
        self.hedging = None
        if hedging is not None:
            from repro.hedging import HedgeConfig, HedgePolicy

            hedge_config = HedgeConfig() if hedging is True else hedging
            self.hedging = HedgePolicy(self, hedge_config)
        #: Optional overload controller (repro.overload): per-shard
        #: adaptive concurrency limits, deadline-aware load shedding and
        #: brownout degradation.  Pass an OverloadConfig (or True for
        #: defaults); None leaves the stock byte-identical behavior.
        #: Constructed after hedging so the brownout can reach the
        #: hedge policy's clone token bucket.
        self.overload = None
        if overload is not None:
            from repro.overload import OverloadConfig, OverloadController

            overload_config = (
                OverloadConfig() if overload is True else overload
            )
            self.overload = OverloadController(self, overload_config)
        #: Optional fan-out engine (repro.futures): lithops-style
        #: map/map_reduce over partitioned data with straggler-aware
        #: gather.  Pass a FanoutConfig (or True for defaults); None
        #: leaves the stock byte-identical behavior.
        self.fanout = None
        if fanout is not None:
            from repro.futures import FanoutConfig, FanoutEngine

            fanout_config = FanoutConfig() if fanout is True else fanout
            self.fanout = FanoutEngine(self, fanout_config)
        #: Optional computation-reuse engine (repro.reuse): a
        #: deterministic result cache in front of the admission gate
        #: with single-flight de-dup and stale-under-pressure serving.
        #: Pass a ReuseConfig (or True for defaults); None leaves the
        #: stock byte-identical behavior.  Constructed last so its
        #: staleness policy can consult the overload controller.
        self.reuse = None
        if reuse is not None:
            from repro.reuse import ReuseConfig, ReuseEngine

            reuse_config = ReuseConfig() if reuse is True else reuse
            self.reuse = ReuseEngine(self, reuse_config)

    # -- construction helpers -------------------------------------------------------

    @classmethod
    def create(cls, num_dpus: int = 2, dpu_model: str = "bf1", **kwargs) -> "MoleculeRuntime":
        """Build a CPU+DPU Molecule deployment and boot it."""
        sim = Simulator()
        machine = build_cpu_dpu_machine(sim, num_dpus=num_dpus, dpu_model=dpu_model)
        runtime = cls(sim=sim, machine=machine, **kwargs)
        runtime.start()
        return runtime

    def run(self, generator):
        """Spawn a generator, run the simulation, return its value."""
        proc = self.sim.spawn(generator)
        self.sim.run()
        if not proc.processed:
            raise SchedulingError("runtime generator deadlocked")
        return proc.value

    def start(self) -> None:
        """Boot the runtime: launch executors on every neighbour PU."""
        if self._booted:
            return
        self.run(self.boot())
        self._booted = True
        if self.injector is not None:
            self.injector.arm()

    def boot(self):
        """Generator: xSpawn executors and wire their nIPC channels."""
        host = self.machine.host_cpu
        host_shim = self.cluster.shim_on(host.pu_id)
        for pu in self.machine.general_purpose_pus():
            if pu.pu_id == host.pu_id:
                continue
            pu_shim = self.cluster.shim_on(pu.pu_id)
            _pid, exec_group, _process = yield from host_shim.xspawn(
                self.group, pu.pu_id, f"executor-{pu.name}"
            )
            # Command channel: homed on the executor's PU.
            cmd_uuid = f"cmd-{pu.name}"
            cmd_handle_exec = yield from pu_shim.xfifo_init(
                exec_group, cmd_uuid, cmd_uuid
            )
            yield from pu_shim.grant_cap(
                exec_group, self.group.xpu_pid,
                cmd_handle_exec.fifo.obj_id, Permission.WRITE,
            )
            cmd_handle_mol = yield from host_shim.xfifo_connect(
                self.group, cmd_uuid, FifoEnd.WRITE
            )
            # Reply channel: homed on Molecule's PU.
            reply_uuid = f"reply-{pu.name}"
            reply_handle_mol = yield from host_shim.xfifo_init(
                self.group, reply_uuid, reply_uuid
            )
            yield from host_shim.grant_cap(
                self.group, exec_group.xpu_pid,
                reply_handle_mol.fifo.obj_id, Permission.WRITE,
            )
            reply_handle_exec = yield from pu_shim.xfifo_connect(
                exec_group, reply_uuid, FifoEnd.WRITE
            )

            def reply_writer(request_id, result, _shim=pu_shim, _group=exec_group,
                             _handle=reply_handle_exec):
                yield from _shim.xfifo_write(
                    _group, _handle, (request_id, result), REPLY_BYTES
                )

            executor = Executor(
                shim=pu_shim,
                runc=self.runcs[pu.pu_id],
                group=exec_group,
                cmd_handle=cmd_handle_exec,
                reply_writer=reply_writer,
            )
            client = ExecutorClient(host_shim, self.group, cmd_handle_mol)
            self._executors[pu.pu_id] = executor
            self._clients[pu.pu_id] = client
            self.sim.spawn(executor.daemon(), name=f"executor-{pu.name}")
            self.sim.spawn(
                self._reply_pump(client, reply_handle_mol),
                name=f"reply-pump-{pu.name}",
            )

    def _reply_pump(self, client: ExecutorClient, reply_handle):
        host_shim = self.cluster.shim_on(self.machine.host_cpu.pu_id)
        while True:
            request_id, result = yield from host_shim.xfifo_read(
                self.group, reply_handle
            )
            client.resolve(request_id, result)

    # -- component lookup -------------------------------------------------------------

    def runc_on(self, pu_id: int) -> RuncRuntime:
        """The container runtime on a general-purpose PU."""
        try:
            return self.runcs[pu_id]
        except KeyError:
            raise XpuError(f"no runc runtime on PU {pu_id}") from None

    def runf_on(self, pu_id: int) -> RunfRuntime:
        """The FPGA runtime for an FPGA PU."""
        try:
            return self.runfs[pu_id]
        except KeyError:
            raise XpuError(f"no runf runtime on PU {pu_id}") from None

    def rung_on(self, pu_id: int) -> RungRuntime:
        """The GPU runtime for a GPU PU."""
        try:
            return self.rungs[pu_id]
        except KeyError:
            raise XpuError(f"no runG runtime on PU {pu_id}") from None

    def executor_client(self, pu_id: int) -> Optional[ExecutorClient]:
        """The nIPC client for a neighbour PU (None for the host PU)."""
        return self._clients.get(pu_id)

    # -- deployment ---------------------------------------------------------------------

    def deploy(
        self,
        function: FunctionDef,
        dedicated_template: bool = True,
        prepare_containers: int = 1,
    ):
        """Generator: register a function and prepare its PUs.

        Boots template containers (dedicated ones pre-import the
        function's dependencies) and pre-initialises function containers
        on every general-purpose PU the function may run on.
        """
        self.registry.register(function)
        if not self.use_cfork:
            return function
        for pu in self.machine.general_purpose_pus():
            if not function.supports(pu.kind):
                continue
            dedicated = function.code if dedicated_template else None
            client = self.executor_client(pu.pu_id)
            if client is None:
                runc = self.runc_on(pu.pu_id)
                yield from runc.ensure_template(
                    function.code.language, dedicated_to=dedicated
                )
                if prepare_containers:
                    yield from runc.prepare_containers(prepare_containers)
            else:
                yield from client.call(
                    "ensure_template",
                    language=function.code.language,
                    dedicated_to=dedicated,
                )
                if prepare_containers:
                    yield from client.call(
                        "prepare_containers", count=prepare_containers
                    )
        return function

    def deploy_now(self, function: FunctionDef, **kwargs) -> FunctionDef:
        """Synchronous convenience wrapper over :meth:`deploy`."""
        return self.run(self.deploy(function, **kwargs))

    # -- invocation ---------------------------------------------------------------------

    def sharded_frontend(
        self, num_shards: int, policy: str = "hash", **kwargs
    ):
        """Install an N-shard gateway front end over this runtime.

        Subsequent :meth:`invoke` calls route through the shards; the
        original single gateway stays wired for components that bypass
        the front door (e.g. DAG entry requests).
        """
        from repro.loadgen.sharding import ShardedFrontend

        return ShardedFrontend(self, num_shards, policy=policy, **kwargs)

    def invoke(self, name: str, **kwargs):
        """Generator: one request through the front door (see Invoker).

        With a sharded front end installed the request is routed to a
        gateway shard; otherwise it enters through the single gateway.
        """
        if self.frontend is not None:
            result = yield from self.frontend.invoke(name, **kwargs)
        else:
            result = yield from self.invoker.invoke(name, **kwargs)
        return result

    def invoke_now(self, name: str, **kwargs):
        """Synchronous convenience wrapper over :meth:`invoke`."""
        return self.run(self.invoke(name, **kwargs))

    def run_chain(self, chain: Chain, placements, **kwargs):
        """Generator: one chain request with direct-connect DAG calls."""
        result = yield from self.dag.run_chain(chain, placements, **kwargs)
        return result

    # -- reports ------------------------------------------------------------------------

    def _refresh_gauges(self) -> None:
        """Sample point-in-time state (pools, DRAM) into the gauges."""
        handles = getattr(self, "_gauge_handles", None)
        if handles is None:
            # Resolve every per-PU gauge child once; snapshots after the
            # first reuse the bound handles.
            registry = self.obs.registry
            pool_size = registry.get("repro_warm_pool_size")
            pool_hits = registry.get("repro_warm_pool_hits")
            pool_misses = registry.get("repro_warm_pool_misses")
            dram_used = registry.get("repro_pu_dram_used_mb")
            breaker_state = registry.get("repro_breaker_state")
            handles = self._gauge_handles = {
                "pools": {
                    pu_id: (
                        pool_size.bind(pu=self.machine.pus[pu_id].name),
                        pool_hits.bind(pu=self.machine.pus[pu_id].name),
                        pool_misses.bind(pu=self.machine.pus[pu_id].name),
                        dram_used.bind(pu=self.machine.pus[pu_id].name),
                    )
                    for pu_id in self.invoker.pools
                },
                "breakers": {
                    pu.pu_id: breaker_state.bind(pu=pu.name)
                    for pu in self.machine.pus.values()
                },
            }
        for pu_id, pool in self.invoker.pools.items():
            pu = self.machine.pus[pu_id]
            size_g, hits_g, misses_g, dram_g = handles["pools"][pu_id]
            size_g.set(len(pool))
            hits_g.set(pool.hits)
            misses_g.set(pool.misses)
            dram_g.set(pu.dram_used_mb)
        for pu in self.machine.pus.values():
            if self.health.is_down(pu):
                value = 3  # crashed and not yet rebooted
            else:
                value = BREAKER_STATE_VALUE[self.health.breaker(pu).state]
            handles["breakers"][pu.pu_id].set(value)
        if self.frontend is not None:
            self.obs.ensure_shard_metrics()
            outstanding = self.obs.shard_outstanding
            utilization = self.obs.shard_utilization
            for entry in self.frontend.snapshot():
                label = str(entry["shard"])
                outstanding.bind(shard=label).set(entry["outstanding"])
                utilization.bind(shard=label).set(entry["utilization"])
        if self.overload is not None:
            self.obs.ensure_overload_metrics()
            limit_g = self.obs.overload_limit
            depth_g = self.obs.overload_queue_depth
            for gate in self.overload.gates():
                limit_g.bind(shard=gate.label).set(gate.limiter.limit)
                depth_g.bind(shard=gate.label).set(len(gate.queue))
            self.obs.overload_pressure.set(self.overload.pressure())
        if self.reuse is not None:
            self.obs.ensure_reuse_metrics()
            self.obs.on_reuse_cache_state(
                len(self.reuse.cache),
                self.reuse.cache.bytes_used,
                self.reuse.hit_rate(),
            )

    def metrics_snapshot(self, include_kernel: bool = False) -> dict:
        """A JSON-friendly dump of every metric family, gauges freshly
        sampled, plus summary counters tests and reports key on.

        ``include_kernel=True`` additionally publishes the sim kernel's
        profiling counters (``repro_kernel_*`` families).  Opt-in so the
        metric catalog stays byte-identical for golden runs.
        """
        self._refresh_gauges()
        if include_kernel:
            self.obs.record_kernel_profile(self.sim.kernel_profile())
        admitted = self.gateway.requests_admitted
        if self.frontend is not None:
            admitted += self.frontend.requests_admitted
        return {
            "sim_time_s": self.sim.now,
            "requests_admitted": admitted,
            "cold_invocations": self.invoker.cold_invocations,
            "warm_invocations": self.invoker.warm_invocations,
            "dead_letters": len(self.dead_letters),
            "metrics": self.obs.registry.to_dict(),
        }

    def metrics_exposition(self) -> str:
        """Prometheus text-format exposition of every metric family."""
        self._refresh_gauges()
        return self.obs.registry.expose()

    def support_matrix(self) -> dict[str, dict[str, object]]:
        """The Table 1 / Table 5 support matrix of this deployment."""
        matrix: dict[str, dict[str, object]] = {}
        for pu in self.machine.pus.values():
            kind = pu.kind
            if kind.general_purpose:
                vsandbox = "runc (modified)"
                comm = "RDMA" if kind is PuKind.DPU else "IPC"
                model = "Python / Node.js"
            elif kind is PuKind.FPGA:
                vsandbox = "runf (OpenCL)"
                comm = "DMA"
                model = "OpenCL"
            else:
                vsandbox = "runG (CUDA)"
                comm = "DMA"
                model = "CUDA C++"
            matrix[pu.name] = {
                "kind": kind.value,
                "vectorized_sandbox": vsandbox,
                "xpu_shim": "virtual (host)" if not kind.general_purpose else "native",
                "communication": comm,
                "programming_model": model,
                "cfork": kind.general_purpose,
                "vs_caching": kind is PuKind.FPGA,
                "nipc_dag": True,
            }
        return matrix
