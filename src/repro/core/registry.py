"""Function registry: definitions, work profiles and placement profiles.

Unlike the one-fits-all resource model of commercial platforms, Molecule
requires end-users to explicitly pick resources and PU kinds per
function, possibly several (§4.1 "Profile selections"): a function may
be deployable on both CPU and DPU and the control plane picks one at
request time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import config
from repro.errors import RegistryError, WorkloadError
from repro.hardware.pu import ProcessingUnit, PuKind
from repro.sandbox.base import FunctionCode


@dataclass(frozen=True)
class WorkProfile:
    """Execution-time model of one function across PU kinds.

    ``warm_exec_ms`` is the warm execution latency on the reference CPU;
    general-purpose PUs scale it by their speed (optionally overridden
    for event-driven functions that are less frequency-bound).
    Accelerator timings are explicit because accelerated kernels do not
    follow CPU scaling at all.
    """

    warm_exec_ms: float
    #: Override the CPU/DPU speed ratio (e.g. Alexa's Node.js handlers
    #: see ~3x on BF-1, not the 6x of compute kernels: Fig. 14e).
    dpu_slowdown: Optional[float] = None
    fpga_exec_ms: Optional[float] = None
    gpu_exec_ms: Optional[float] = None

    def __post_init__(self):
        if self.warm_exec_ms < 0:
            raise WorkloadError(f"negative warm exec: {self.warm_exec_ms}")

    def exec_time(self, pu: ProcessingUnit) -> float:
        """Warm execution time (seconds) on ``pu``."""
        if pu.kind is PuKind.FPGA:
            if self.fpga_exec_ms is None:
                raise WorkloadError("function has no FPGA execution profile")
            return self.fpga_exec_ms * config.MS
        if pu.kind is PuKind.GPU:
            if self.gpu_exec_ms is None:
                raise WorkloadError("function has no GPU execution profile")
            return self.gpu_exec_ms * config.MS
        if pu.kind is PuKind.DPU and self.dpu_slowdown is not None:
            return self.warm_exec_ms * config.MS * self.dpu_slowdown
        return pu.compute_time(self.warm_exec_ms * config.MS)


@dataclass(frozen=True)
class FunctionDef:
    """One deployed serverless function."""

    name: str
    code: FunctionCode
    work: WorkProfile
    #: PU kinds the user is willing to pay for, cheapest-preferred order
    #: chosen by the platform (§4.1).
    profiles: tuple[PuKind, ...] = (PuKind.CPU,)
    #: Opt-in for result memoization (repro.reuse): only functions the
    #: user declares idempotent may be answered from the result cache.
    idempotent: bool = False

    def __post_init__(self):
        if not self.profiles:
            raise RegistryError(f"function {self.name!r} has no PU profile")
        for kind in self.profiles:
            if kind in (PuKind.FPGA,) and self.code.kernel is None:
                raise RegistryError(
                    f"function {self.name!r} lists {kind.value} but has no kernel"
                )
            if kind.general_purpose and self.code.language is None:
                raise RegistryError(
                    f"function {self.name!r} lists {kind.value} but has no language"
                )

    def supports(self, kind: PuKind) -> bool:
        """True if the user allowed this PU kind."""
        return kind in self.profiles


class FunctionRegistry:
    """All functions deployed on one Molecule runtime."""

    def __init__(self):
        self._functions: dict[str, FunctionDef] = {}
        #: Per-name deploy generation: bumped by every register and
        #: unregister, so a cached result (repro.reuse) filled under an
        #: older deploy of the same name can never be served fresh.
        self._generations: dict[str, int] = {}

    def register(self, function: FunctionDef) -> FunctionDef:
        """Deploy a function (rejects duplicate names)."""
        if function.name in self._functions:
            raise RegistryError(f"function {function.name!r} already registered")
        self._functions[function.name] = function
        self._generations[function.name] = (
            self._generations.get(function.name, 0) + 1
        )
        return function

    def unregister(self, name: str) -> None:
        """Remove a deployed function."""
        if name not in self._functions:
            raise RegistryError(f"unknown function {name!r}")
        del self._functions[name]
        self._generations[name] = self._generations.get(name, 0) + 1

    def generation(self, name: str) -> int:
        """Deploy generation of ``name`` (0 if never registered)."""
        return self._generations.get(name, 0)

    def get(self, name: str) -> FunctionDef:
        """Function by name (raises for unknown names)."""
        try:
            return self._functions[name]
        except KeyError:
            raise RegistryError(f"unknown function {name!r}") from None

    def names(self) -> list[str]:
        """All deployed function names, sorted."""
        return sorted(self._functions)

    def __len__(self) -> int:
        return len(self._functions)

    def __contains__(self, name: str) -> bool:
        return name in self._functions
