"""Molecule core: registry, scheduling, invocation, DAGs, the facade."""

from repro.core.billing import BillingLedger, BillingSummary, LedgerEntry
from repro.core.cluster import GlobalManager, WorkerInfo
from repro.core.dag import Chain, ChainResult, ChainStage, DagEngine, run_fpga_chain
from repro.core.dagraph import (
    DagEdge,
    DagGraphEngine,
    DagRunResult,
    FunctionDag,
    alexa_tree,
)
from repro.core.executor import Command, Executor, ExecutorClient
from repro.core.policies import (
    ChainLocalityPolicy,
    CheapestPolicy,
    CostAwarePolicy,
    FastestPolicy,
    UserOrderPolicy,
)
from repro.core.gateway import ApiGateway
from repro.core.invoker import FunctionInstance, InvocationResult, Invoker
from repro.core.keepalive import FpgaImagePlanner, ImagePlan, WarmPool
from repro.core.molecule import MoleculeRuntime
from repro.core.registry import FunctionDef, FunctionRegistry, WorkProfile
from repro.core.scheduler import Scheduler

__all__ = [
    "ApiGateway",
    "BillingLedger",
    "BillingSummary",
    "Chain",
    "ChainLocalityPolicy",
    "CheapestPolicy",
    "CostAwarePolicy",
    "DagEdge",
    "DagGraphEngine",
    "DagRunResult",
    "FastestPolicy",
    "FunctionDag",
    "GlobalManager",
    "WorkerInfo",
    "LedgerEntry",
    "UserOrderPolicy",
    "alexa_tree",
    "ChainResult",
    "ChainStage",
    "Command",
    "DagEngine",
    "Executor",
    "ExecutorClient",
    "FpgaImagePlanner",
    "FunctionDef",
    "FunctionInstance",
    "FunctionRegistry",
    "ImagePlan",
    "InvocationResult",
    "Invoker",
    "MoleculeRuntime",
    "Scheduler",
    "WarmPool",
    "WorkProfile",
    "run_fpga_chain",
]
