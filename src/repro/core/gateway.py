"""The API gateway / global manager front-end (§4.1).

Requests enter Molecule through the gateway, which admits them (a small
scheduling overhead), stamps request ids, and hands them to the
invoker.  Baseline systems route *inter-function* traffic through the
gateway too; Molecule's nIPC DAG calls bypass it — that contrast is the
point of §4.3.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, Optional, TYPE_CHECKING

from repro import config
from repro.sim import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability


class ApiGateway:
    """Request admission for one worker machine.

    With ``default_deadline_s`` configured, every admitted request is
    stamped with an absolute deadline; the invoker abandons attempts
    that would overrun it and raises
    :class:`~repro.errors.DeadlineExceeded`.

    ``request_ids`` lets several gateways share one id stream: the
    sharded front end (:mod:`repro.loadgen.sharding`) passes a common
    counter to every shard so request ids stay machine-unique and the
    dead-letter accounting (``answered + dead == admitted``) spans all
    shards.
    """

    def __init__(
        self,
        sim: Simulator,
        overhead_ms: float = config.GATEWAY_OVERHEAD_MS,
        obs: Optional["Observability"] = None,
        default_deadline_s: Optional[float] = None,
        request_ids: Optional[Iterator[int]] = None,
    ):
        self.sim = sim
        self.overhead_ms = overhead_ms
        self.obs = obs
        self.default_deadline_s = default_deadline_s
        self._request_ids = request_ids if request_ids is not None else itertools.count(1)
        self.requests_admitted = 0
        self._deadlines: dict[int, float] = {}
        #: Called with the running admitted count after each admission
        #: (the fault injector's after-N-requests triggers hook in here).
        self._admit_listeners: list[Callable[[int], None]] = []

    def add_admit_listener(self, listener: Callable[[int], None]) -> None:
        """Subscribe to admissions (called with the admitted count)."""
        self._admit_listeners.append(listener)

    def deadline_for(self, request_id: int) -> Optional[float]:
        """Absolute sim-time deadline of a request (None if unbounded)."""
        return self._deadlines.get(request_id)

    def admit(self, deadline_s: Optional[float] = None):
        """Generator: admit one request, returning its request id.

        ``deadline_s`` (relative) overrides the gateway default for
        this one request.
        """
        began = self.sim.now
        yield self.sim.timeout(self.overhead_ms * config.MS)
        self.requests_admitted += 1
        if self.obs is not None:
            self.obs.on_gateway_admit(self.sim.now - began)
        request_id = next(self._request_ids)
        budget = deadline_s if deadline_s is not None else self.default_deadline_s
        if budget is not None:
            self._deadlines[request_id] = self.sim.now + budget
        for listener in self._admit_listeners:
            listener(self.requests_admitted)
        return request_id
