"""The API gateway / global manager front-end (§4.1).

Requests enter Molecule through the gateway, which admits them (a small
scheduling overhead), stamps request ids, and hands them to the
invoker.  Baseline systems route *inter-function* traffic through the
gateway too; Molecule's nIPC DAG calls bypass it — that contrast is the
point of §4.3.
"""

from __future__ import annotations

import itertools
from typing import Optional, TYPE_CHECKING

from repro import config
from repro.sim import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability


class ApiGateway:
    """Request admission for one worker machine."""

    def __init__(
        self,
        sim: Simulator,
        overhead_ms: float = config.GATEWAY_OVERHEAD_MS,
        obs: Optional["Observability"] = None,
    ):
        self.sim = sim
        self.overhead_ms = overhead_ms
        self.obs = obs
        self._request_ids = itertools.count(1)
        self.requests_admitted = 0

    def admit(self):
        """Generator: admit one request, returning its request id."""
        began = self.sim.now
        yield self.sim.timeout(self.overhead_ms * config.MS)
        self.requests_admitted += 1
        if self.obs is not None:
            self.obs.on_gateway_admit(self.sim.now - began)
        return next(self._request_ids)
