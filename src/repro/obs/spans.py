"""Per-invocation lifecycle spans over the simulated clock.

Each admitted request gets a :class:`RequestTrace`: a dedicated
:class:`~repro.analysis.trace.Tracer` whose root ``request`` span holds
the lifecycle phases the paper's breakdowns reason about::

    request{function, request_id, pu, pu_kind, start_kind}
      admit           gateway admission
      schedule        warm-pool lookup + placement decision
      sandbox_start   cold path only: cfork / create+start / repack
        nipc          remote cfork command over the executor channel
      exec            data prep + COW penalty + core queueing + run
        nipc          accelerator DMA transfers (transport="dma")
      respond         pool release + billing

A per-request tracer (rather than one global tracer) is what makes the
trees correct under concurrency: interleaved requests in the simulator
would corrupt a single tracer's span stack.

``start_kind`` distinguishes the three start paths: ``cold`` (baseline
container boot), ``fork`` (cfork from a template), ``warm`` (pool hit).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.trace import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.observability import Observability

#: The lifecycle phase names, in request order (sandbox_start appears
#: only on cold starts).  A sixth phase, ``queue``, appears between
#: admit and schedule only when an overload controller parks the
#: request in a shard's bounded admission queue (repro.overload).
LIFECYCLE_PHASES = ("admit", "schedule", "sandbox_start", "exec", "respond")

#: start_kind label values.
START_COLD = "cold"
START_FORK = "fork"
START_WARM = "warm"
#: Served by a coalesced single-flight batch (repro.warmpath).
START_COALESCED = "coalesced"
#: Answered by a hedge clone on a second PU (repro.hedging): the
#: primary copy straggled past the percentile trigger and lost the
#: first-wins race to its clone.
START_HEDGED = "hedged"
#: Answered from the result cache (repro.reuse): a fresh (or
#: stale-under-pressure) memoized result served without taking a gate
#: slot or touching a sandbox.
START_CACHED = "cached"
#: Root span kind of a fan-out *job* trace (repro.futures): the
#: CPU-partition -> per-partition execute -> CPU-reduce pipeline.  The
#: per-partition tasks are ordinary requests with their own traces;
#: the job trace holds the stage phases below.
START_FANOUT = "fanout"

#: Phase names of a fan-out job span tree, in pipeline order
#: (``reduce`` appears only on ``map_reduce``).  Deliberately disjoint
#: from LIFECYCLE_PHASES so job traces never pollute the per-request
#: stage percentiles.
FANOUT_STAGES = ("partition", "fanout", "gather", "reduce")


class RequestTrace:
    """The span tree of one request, recorded against sim time."""

    def __init__(self, obs: "Observability", function: str):
        self.obs = obs
        self.function = function
        self.tracer = Tracer(obs.sim)
        self.root = self.tracer.begin("request", function=function)
        self.finished = False

    def begin_phase(self, name: str, **attributes) -> Span:
        """Open a span nested under the innermost open one."""
        return self.tracer.begin(name, **attributes)

    def end_phase(self, span: Span) -> Span:
        """Close the innermost open span."""
        return self.tracer.end(span)

    def phase(self, name: str, **attributes):
        """Context-manager form of begin/end."""
        return self.tracer.span(name, **attributes)

    def annotate(self, **attributes) -> None:
        """Attach attributes to the root ``request`` span."""
        self.root.attributes.update(attributes)

    def finish(self) -> None:
        """Close the request span and publish the trace's metrics."""
        if self.finished:
            return
        self.tracer.end(self.root)
        self.finished = True
        self.obs.record(self)

    def fail(self, error: str) -> None:
        """Abandon the trace on an error: unwind every open span, tag
        the root with the error, and count the failure (the phase
        histograms only ever see completed requests)."""
        if self.finished:
            return
        while self.tracer._stack:
            self.tracer.end(self.tracer._stack[-1])
        self.finished = True
        self.annotate(error=error)
        self.obs.record_failure(self)

    def shed(self, reason: str) -> None:
        """Abandon the trace for a load-shed request (repro.overload):
        unwind every open span, tag the root with the shed reason, and
        record it apart from both the completed and the failed
        populations — a shed is deliberate back-pressure, not an
        error, and must not skew either the phase histograms or the
        failure counters."""
        if self.finished:
            return
        while self.tracer._stack:
            self.tracer.end(self.tracer._stack[-1])
        self.finished = True
        self.annotate(shed=reason)
        self.obs.record_shed(self)

    def unwind(self) -> None:
        """Close every open span except the root ``request`` span.

        The retry loop calls this between attempts: a failed or
        abandoned attempt leaves its phase spans open, and the next
        attempt's spans must nest directly under the root again.
        """
        while len(self.tracer._stack) > 1:
            self.tracer.end(self.tracer._stack[-1])

    def phases(self) -> dict[str, float]:
        """Phase name -> duration (direct children of the root)."""
        return {span.name: span.duration_s for span in self.root.children}

    def render(self) -> str:
        """Indented text timeline of the request."""
        return self.tracer.render()


class _NullSpan:
    """Inert span handed out when observability is disabled."""

    __slots__ = ("attributes",)

    def __init__(self):
        self.attributes: dict[str, object] = {}

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


class NullRequestTrace:
    """No-op stand-in so instrumented code never branches on None."""

    def begin_phase(self, name: str, **attributes) -> _NullSpan:
        return _NullSpan()

    def end_phase(self, span) -> None:
        return None

    def phase(self, name: str, **attributes) -> _NullSpan:
        return _NullSpan()

    def annotate(self, **attributes) -> None:
        return None

    def finish(self) -> None:
        return None

    def fail(self, error: str) -> None:
        return None

    def shed(self, reason: str) -> None:
        return None

    def unwind(self) -> None:
        return None


#: Shared inert instance (stateless, safe to reuse).
NULL_TRACE = NullRequestTrace()


class DetachableTrace:
    """A severable proxy in front of a trace.

    Each retry attempt writes its spans through one of these.  When the
    deadline fires first, the invoker *orphans* the attempt — it keeps
    running in the background so its resources (cores, pool slots,
    DRAM) are released normally — and calls :meth:`detach` so every
    later span operation from the orphan lands on :data:`NULL_TRACE`
    instead of corrupting the request's real span stack.
    """

    def __init__(self, trace):
        self._trace = trace

    def detach(self) -> None:
        """Sever the proxy: all further calls become no-ops."""
        self._trace = NULL_TRACE

    def begin_phase(self, name: str, **attributes):
        return self._trace.begin_phase(name, **attributes)

    def end_phase(self, span):
        return self._trace.end_phase(span)

    def phase(self, name: str, **attributes):
        return self._trace.phase(name, **attributes)

    def annotate(self, **attributes) -> None:
        self._trace.annotate(**attributes)

    def unwind(self) -> None:
        self._trace.unwind()
