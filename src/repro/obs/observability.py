"""The runtime's observability hub.

One :class:`Observability` instance per :class:`MoleculeRuntime` owns
the metrics registry and the per-request span store, and exposes the
narrow hooks the runtime layers call:

* gateway      -> :meth:`on_gateway_admit`
* scheduler    -> :meth:`on_placement` / :meth:`on_placement_failure`
* invoker      -> :meth:`begin_invocation` (lifecycle spans), keep-alive
                  reaping via :meth:`on_keepalive_reaped`
* sandboxes    -> :meth:`on_sandbox_verb` (runc/runf/runG OCI verbs)
* XPU-Shim     -> :meth:`on_xpucall` / :meth:`on_nipc_message`

Every layer treats its hook as optional (``obs=None`` keeps the
component observability-free for unit tests), so the subsystem adds no
coupling below ``core.molecule``, which wires everything.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import RequestTrace

#: Finer buckets for sub-millisecond paths (XPUcalls, nIPC, admission).
MICRO_BUCKETS = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4,
    5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 0.1, 1.0,
)


class Observability:
    """Metrics registry + lifecycle span store for one runtime."""

    def __init__(
        self,
        sim,
        registry: Optional[MetricsRegistry] = None,
        max_traces: int = 10_000,
    ):
        self.sim = sim
        self.registry = registry or MetricsRegistry()
        #: Completed request traces, oldest evicted first.
        self.traces: deque[RequestTrace] = deque(maxlen=max_traces)

        r = self.registry
        # -- request lifecycle -----------------------------------------------------
        self.requests_total = r.counter(
            "repro_requests_total",
            "Completed invocations by function, PU kind and start kind.",
            ("function", "pu_kind", "start_kind"),
        )
        self.request_seconds = r.histogram(
            "repro_request_seconds",
            "End-to-end request latency.",
            ("function", "pu_kind", "start_kind"),
        )
        self.phase_seconds = r.histogram(
            "repro_phase_seconds",
            "Per-phase latency (admit/schedule/sandbox_start/exec/respond).",
            ("phase", "function", "pu_kind", "start_kind"),
        )
        self.starts_total = r.counter(
            "repro_starts_total",
            "Instance starts by kind (cold | fork | warm).",
            ("start_kind",),
        )
        self.failures_total = r.counter(
            "repro_invocation_failures_total",
            "Invocations abandoned by an error, by error type.",
            ("function", "error"),
        )
        # -- gateway ---------------------------------------------------------------
        self.gateway_requests = r.counter(
            "repro_gateway_requests_total",
            "Requests admitted by the API gateway.",
        )
        self.gateway_admit_seconds = r.histogram(
            "repro_gateway_admit_seconds",
            "Gateway admission overhead.",
            buckets=MICRO_BUCKETS,
        )
        # -- scheduler -------------------------------------------------------------
        self.placements_total = r.counter(
            "repro_scheduler_placements_total",
            "Successful instance placements by PU kind.",
            ("pu_kind",),
        )
        self.placement_failures_total = r.counter(
            "repro_scheduler_placement_failures_total",
            "Placements rejected by admission control.",
        )
        # -- keep-alive ------------------------------------------------------------
        self.keepalive_reaped_total = r.counter(
            "repro_keepalive_reaped_total",
            "Warm instances evicted by the keep-alive TTL reaper.",
        )
        self.pool_size = r.gauge(
            "repro_warm_pool_size",
            "Idle warm instances per PU (refreshed at snapshot time).",
            ("pu",),
        )
        self.pool_hits = r.gauge(
            "repro_warm_pool_hits",
            "Warm-pool hits per PU (refreshed at snapshot time).",
            ("pu",),
        )
        self.pool_misses = r.gauge(
            "repro_warm_pool_misses",
            "Warm-pool misses per PU (refreshed at snapshot time).",
            ("pu",),
        )
        self.dram_used_mb = r.gauge(
            "repro_pu_dram_used_mb",
            "DRAM reserved on a general-purpose PU (snapshot time).",
            ("pu",),
        )
        # -- sandboxes -------------------------------------------------------------
        self.sandbox_verb_seconds = r.histogram(
            "repro_sandbox_verb_seconds",
            "Sandbox runtime verb latency (create/start/cfork/...).",
            ("runtime", "verb"),
        )
        # -- XPU-Shim --------------------------------------------------------------
        self.xpucalls_total = r.counter(
            "repro_xpucalls_total",
            "XPUcalls served by shim instances.",
            ("pu_kind", "transport"),
        )
        self.xpucall_seconds = r.histogram(
            "repro_xpucall_seconds",
            "XPUcall user<->shim round-trip overhead.",
            ("pu_kind", "transport"),
            buckets=MICRO_BUCKETS,
        )
        self.nipc_messages_total = r.counter(
            "repro_nipc_messages_total",
            "XPU-FIFO messages written (local fast path vs cross-PU nIPC).",
            ("path",),
        )
        self.nipc_bytes_total = r.counter(
            "repro_nipc_bytes_total",
            "XPU-FIFO payload bytes written.",
            ("path",),
        )
        # -- reliability -------------------------------------------------------------
        self.retries_total = r.counter(
            "repro_retries_total",
            "Attempts retried after a transient failure, by error type.",
            ("function", "reason"),
        )
        self.deadline_exceeded_total = r.counter(
            "repro_deadline_exceeded_total",
            "Requests abandoned at their gateway deadline.",
            ("function",),
        )
        self.dead_letters_total = r.counter(
            "repro_dead_letters_total",
            "Requests parked in the dead-letter queue, by reason.",
            ("function", "reason"),
        )
        self.degraded_total = r.counter(
            "repro_degraded_total",
            "Attempts degraded from an accelerator to a CPU profile.",
            ("function", "from_kind", "to_kind"),
        )
        self.breaker_transitions_total = r.counter(
            "repro_breaker_transitions_total",
            "Circuit-breaker state transitions per PU.",
            ("pu", "to_state"),
        )
        self.breaker_state = r.gauge(
            "repro_breaker_state",
            "Current breaker state per PU (0 closed, 1 half-open, 2 open, "
            "3 down; refreshed at snapshot time).",
            ("pu",),
        )
        self.faults_injected_total = r.counter(
            "repro_faults_injected_total",
            "Faults fired by the deterministic injector, by kind.",
            ("kind",),
        )
        self.nipc_dropped_total = r.counter(
            "repro_nipc_dropped_total",
            "XPU-FIFO messages dropped by injected faults.",
        )
        self.nipc_delayed_total = r.counter(
            "repro_nipc_delayed_total",
            "XPU-FIFO messages delayed by injected faults.",
        )
        # -- sharded front end --------------------------------------------------------
        # Registered lazily (ensure_shard_metrics): most runs have no
        # sharded front end, and unconditional registration would grow
        # the metric catalog that golden-snapshot tests pin down.
        self.shard_routed_total = None
        self.shard_outstanding = None
        self.shard_utilization = None
        # -- warm-path engine ---------------------------------------------------------
        # Registered lazily (ensure_warmpath_metrics): only runs with a
        # WarmPathEngine wired see these families, keeping the metric
        # catalog byte-identical for engine-off golden runs.
        self.coalesced_starts_total = None
        self.prewarm_spawned_total = None
        self.prewarm_hits_total = None
        self.prewarm_wasted_total = None
        self.predicted_rps = None
        self.bitstream_prefetch_started_total = None
        self.bitstream_prefetch_hits_total = None
        #: FPGA planner drops — lazy for the same reason (only runs
        #: whose predicted set overflows the image ever see it).
        self.planner_dropped_total = None
        # -- hedging engine -------------------------------------------------------------
        # Registered lazily (ensure_hedge_metrics): only runs with a
        # HedgePolicy wired see these families, keeping the metric
        # catalog byte-identical for hedging-off golden runs.
        self.hedge_fired_total = None
        self.hedge_won_total = None
        self.hedge_cancelled_total = None
        self.hedge_wasted_seconds_total = None
        self.hedge_throttled_total = None
        # -- overload controller ---------------------------------------------------------
        # Registered lazily (ensure_overload_metrics): only runs with an
        # OverloadController wired see these families, keeping the
        # metric catalog byte-identical for controller-off golden runs.
        self.shed_total = None
        self.overload_limit = None
        self.overload_queue_depth = None
        self.overload_pressure = None
        self.brownout_transitions_total = None
        #: Dead-letter overflow — lazy for the same reason (only bounded
        #: queues that actually overflow ever see it).
        self.dead_letter_overflow_total = None
        # -- fan-out engine ---------------------------------------------------------------
        # Registered lazily (ensure_fanout_metrics): only runs with a
        # FanoutEngine wired see these families, keeping the metric
        # catalog byte-identical for futures-off golden runs.
        self.fanout_jobs_total = None
        self.fanout_tasks_total = None
        self.fanout_batches_total = None
        self.fanout_speculations_total = None
        # -- result-cache engine ------------------------------------------------------------
        # Registered lazily (ensure_reuse_metrics): only runs with a
        # ReuseEngine wired see these families, keeping the metric
        # catalog byte-identical for reuse-off golden runs.
        self.reuse_hits_total = None
        self.reuse_misses_total = None
        self.reuse_stale_total = None
        self.reuse_bypass_total = None
        self.reuse_singleflight_total = None
        self.reuse_evictions_total = None
        self.reuse_invalidations_total = None
        self.reuse_cache_entries = None
        self.reuse_cache_bytes = None
        self.reuse_hit_ratio = None
        # -- sim kernel -----------------------------------------------------------------
        # Registered lazily (ensure_kernel_metrics): only snapshots that
        # explicitly publish a kernel profile see these families, keeping
        # the metric catalog byte-identical for golden runs.
        self.kernel_events_processed = None
        self.kernel_batches_drained = None
        self.kernel_heap_ops_avoided = None
        self.kernel_mean_batch_size = None
        self.kernel_dispatched = None
        self.kernel_slab_hit_rate = None

        # -- bound child handles ---------------------------------------------------
        # Labelled hot-path hooks memoize children per label tuple so
        # steady-state observations touch no label-dict validation.
        # (Label-less families memoize their single child inside
        # MetricFamily, lazily, so unobserved families render no series.)
        self._request_children: dict[tuple[str, str, str], tuple] = {}
        self._phase_children: dict[tuple[str, str, str, str], object] = {}
        self._start_children: dict[str, object] = {}
        self._failure_children: dict[tuple[str, str], object] = {}
        self._placement_children: dict[str, object] = {}
        self._sandbox_children: dict[tuple[str, str], object] = {}
        self._xpucall_children: dict[tuple[str, str], tuple] = {}
        self._nipc_children: dict[str, tuple] = {}
        self._retry_children: dict[tuple[str, str], object] = {}
        self._deadline_children: dict[str, object] = {}
        self._dead_letter_children: dict[tuple[str, str], object] = {}
        self._degraded_children: dict[tuple[str, str, str], object] = {}
        self._breaker_children: dict[tuple[str, str], object] = {}
        self._fault_children: dict[str, object] = {}
        self._shard_children: dict[tuple[str, str], object] = {}
        self._warmpath_children: dict[tuple[str, str], object] = {}
        self._hedge_children: dict[tuple[str, str], object] = {}
        self._shed_children: dict[tuple[str, str], object] = {}
        self._brownout_children: dict[str, object] = {}
        self._fanout_children: dict[tuple[str, str], object] = {}
        self._reuse_children: dict[tuple[str, str], object] = {}
        self._kernel_children: dict[tuple[str, str], object] = {}

    # -- lifecycle spans -----------------------------------------------------------

    def begin_invocation(self, function: str) -> RequestTrace:
        """Open the span tree for one request."""
        return RequestTrace(self, function)

    def record(self, trace: RequestTrace) -> None:
        """Publish a finished trace into the metric families."""
        root = trace.root
        attrs = root.attributes
        function = str(attrs.get("function", trace.function))
        pu_kind = str(attrs.get("pu_kind", "unknown"))
        start_kind = str(attrs.get("start_kind", "unknown"))
        key = (function, pu_kind, start_kind)
        bound = self._request_children.get(key)
        if bound is None:
            bound = (
                self.requests_total.bind(
                    function=function, pu_kind=pu_kind, start_kind=start_kind
                ),
                self.request_seconds.bind(
                    function=function, pu_kind=pu_kind, start_kind=start_kind
                ),
            )
            self._request_children[key] = bound
        bound[0].inc()
        bound[1].observe(root.duration_s)
        starts = self._start_children.get(start_kind)
        if starts is None:
            starts = self.starts_total.bind(start_kind=start_kind)
            self._start_children[start_kind] = starts
        starts.inc()
        phase_children = self._phase_children
        for child in root.children:
            phase_key = (child.name, function, pu_kind, start_kind)
            phase = phase_children.get(phase_key)
            if phase is None:
                phase = self.phase_seconds.bind(
                    phase=child.name, function=function,
                    pu_kind=pu_kind, start_kind=start_kind,
                )
                phase_children[phase_key] = phase
            phase.observe(child.duration_s)
        self.traces.append(trace)

    def record_failure(self, trace: RequestTrace) -> None:
        """Count an abandoned trace without polluting the histograms."""
        function = trace.function
        error = str(trace.root.attributes.get("error", "unknown"))
        key = (function, error)
        child = self._failure_children.get(key)
        if child is None:
            child = self.failures_total.bind(function=function, error=error)
            self._failure_children[key] = child
        child.inc()
        self.traces.append(trace)

    def record_shed(self, trace: RequestTrace) -> None:
        """Keep a load-shed trace (repro.overload) without touching the
        histograms or the failure counters: a shed is deliberate
        back-pressure, not an error, and is counted by reason through
        :meth:`on_shed` instead."""
        self.traces.append(trace)

    def completed_traces(self) -> list[RequestTrace]:
        """Recorded traces that finished cleanly (neither failed nor
        shed)."""
        return [
            t for t in self.traces
            if "error" not in t.root.attributes
            and "shed" not in t.root.attributes
        ]

    # -- component hooks -----------------------------------------------------------

    def on_gateway_admit(self, duration_s: float) -> None:
        """One request admitted by the gateway."""
        self.gateway_requests.inc()
        self.gateway_admit_seconds.observe(duration_s)

    def on_placement(self, pu_kind: str) -> None:
        """One instance placed onto a PU."""
        child = self._placement_children.get(pu_kind)
        if child is None:
            child = self.placements_total.bind(pu_kind=pu_kind)
            self._placement_children[pu_kind] = child
        child.inc()

    def on_placement_failure(self) -> None:
        """One placement rejected by admission control."""
        self.placement_failures_total.inc()

    def on_keepalive_reaped(self, count: int) -> None:
        """``count`` idle instances evicted by the TTL reaper."""
        if count:
            self.keepalive_reaped_total.inc(count)

    def on_sandbox_verb(self, runtime: str, verb: str, duration_s: float) -> None:
        """One sandbox-runtime verb completed."""
        key = (runtime, verb)
        child = self._sandbox_children.get(key)
        if child is None:
            child = self.sandbox_verb_seconds.bind(runtime=runtime, verb=verb)
            self._sandbox_children[key] = child
        child.observe(duration_s)

    def on_xpucall(self, pu_kind: str, transport: str, duration_s: float) -> None:
        """One XPUcall served by a shim."""
        key = (pu_kind, transport)
        bound = self._xpucall_children.get(key)
        if bound is None:
            bound = (
                self.xpucalls_total.bind(pu_kind=pu_kind, transport=transport),
                self.xpucall_seconds.bind(pu_kind=pu_kind, transport=transport),
            )
            self._xpucall_children[key] = bound
        bound[0].inc()
        bound[1].observe(duration_s)

    def on_nipc_message(self, path: str, nbytes: int) -> None:
        """One XPU-FIFO write (``path`` is ``local`` or ``cross``)."""
        bound = self._nipc_children.get(path)
        if bound is None:
            bound = (
                self.nipc_messages_total.bind(path=path),
                self.nipc_bytes_total.bind(path=path),
            )
            self._nipc_children[path] = bound
        bound[0].inc()
        bound[1].inc(nbytes)

    # -- reliability hooks ---------------------------------------------------------

    def on_retry(self, function: str, reason: str) -> None:
        """One attempt failed transiently and will be retried."""
        key = (function, reason)
        child = self._retry_children.get(key)
        if child is None:
            child = self.retries_total.bind(function=function, reason=reason)
            self._retry_children[key] = child
        child.inc()

    def on_deadline_exceeded(self, function: str) -> None:
        """One request ran out of deadline budget."""
        child = self._deadline_children.get(function)
        if child is None:
            child = self.deadline_exceeded_total.bind(function=function)
            self._deadline_children[function] = child
        child.inc()

    def on_dead_letter(self, function: str, reason: str) -> None:
        """One request was parked in the dead-letter queue."""
        key = (function, reason)
        child = self._dead_letter_children.get(key)
        if child is None:
            child = self.dead_letters_total.bind(function=function, reason=reason)
            self._dead_letter_children[key] = child
        child.inc()

    def on_degraded(self, function: str, from_kind: str, to_kind: str) -> None:
        """One attempt fell back from an accelerator to a CPU profile."""
        key = (function, from_kind, to_kind)
        child = self._degraded_children.get(key)
        if child is None:
            child = self.degraded_total.bind(
                function=function, from_kind=from_kind, to_kind=to_kind
            )
            self._degraded_children[key] = child
        child.inc()

    def on_breaker_transition(self, pu: str, to_state: str) -> None:
        """One circuit breaker changed state."""
        key = (pu, to_state)
        child = self._breaker_children.get(key)
        if child is None:
            child = self.breaker_transitions_total.bind(pu=pu, to_state=to_state)
            self._breaker_children[key] = child
        child.inc()

    def on_fault_injected(self, kind: str) -> None:
        """The injector fired one fault."""
        child = self._fault_children.get(kind)
        if child is None:
            child = self.faults_injected_total.bind(kind=kind)
            self._fault_children[kind] = child
        child.inc()

    def ensure_shard_metrics(self) -> None:
        """Register the sharded-front-end metric families on first use."""
        if self.shard_routed_total is not None:
            return
        r = self.registry
        self.shard_routed_total = r.counter(
            "repro_shard_routed_total",
            "Requests routed to a gateway shard, by shard and policy.",
            ("shard", "policy"),
        )
        self.shard_outstanding = r.gauge(
            "repro_shard_outstanding",
            "In-flight requests per gateway shard (snapshot time).",
            ("shard",),
        )
        self.shard_utilization = r.gauge(
            "repro_shard_utilization",
            "Busy-time fraction per gateway shard (snapshot time).",
            ("shard",),
        )

    def on_shard_routed(self, shard: int, policy: str) -> None:
        """One request routed to a gateway shard."""
        self.ensure_shard_metrics()
        key = (str(shard), policy)
        child = self._shard_children.get(key)
        if child is None:
            child = self.shard_routed_total.bind(shard=key[0], policy=policy)
            self._shard_children[key] = child
        child.inc()

    # -- warm-path engine hooks ------------------------------------------------------

    def ensure_warmpath_metrics(self) -> None:
        """Register the warm-path metric families on first use."""
        if self.coalesced_starts_total is not None:
            return
        r = self.registry
        self.coalesced_starts_total = r.counter(
            "repro_coalesced_starts",
            "Requests served by a coalesced single-flight cold-start "
            "batch instead of an independent cold start.",
            ("function",),
        )
        self.prewarm_spawned_total = r.counter(
            "repro_prewarm_spawned",
            "Instances forked ahead of demand by the pre-warmer.",
            ("function",),
        )
        self.prewarm_hits_total = r.counter(
            "repro_prewarm_hits",
            "Pre-warmed instances claimed by a request before any use.",
            ("function",),
        )
        self.prewarm_wasted_total = r.counter(
            "repro_prewarm_wasted",
            "Pre-warmed instances destroyed without serving anything.",
            ("function",),
        )
        self.predicted_rps = r.gauge(
            "repro_predicted_rps",
            "Predicted near-term arrival rate per function "
            "(refreshed every pre-warmer tick).",
            ("function",),
        )
        self.bitstream_prefetch_started_total = r.counter(
            "repro_bitstream_prefetch_started",
            "FPGA images programmed ahead of the triggering request.",
            ("function",),
        )
        self.bitstream_prefetch_hits_total = r.counter(
            "repro_bitstream_prefetch_hits",
            "FPGA starts served warm off a prefetched image.",
            ("function",),
        )

    def _warmpath_child(self, family, kind: str, function: str):
        key = (kind, function)
        child = self._warmpath_children.get(key)
        if child is None:
            child = family.bind(function=function)
            self._warmpath_children[key] = child
        return child

    def on_coalesced_start(self, function: str) -> None:
        """One request served by a coalesced batch."""
        self.ensure_warmpath_metrics()
        self._warmpath_child(
            self.coalesced_starts_total, "coalesced", function
        ).inc()

    def on_prewarm_spawned(self, function: str) -> None:
        """The pre-warmer forked one instance ahead of demand."""
        self.ensure_warmpath_metrics()
        self._warmpath_child(
            self.prewarm_spawned_total, "spawned", function
        ).inc()

    def on_prewarm_hit(self, function: str) -> None:
        """One pre-warmed instance was claimed by a request."""
        self.ensure_warmpath_metrics()
        self._warmpath_child(self.prewarm_hits_total, "hit", function).inc()

    def on_prewarm_wasted(self, function: str) -> None:
        """One pre-warmed instance died unused."""
        self.ensure_warmpath_metrics()
        self._warmpath_child(
            self.prewarm_wasted_total, "wasted", function
        ).inc()

    def on_predicted_rps(self, function: str, value: float) -> None:
        """The predictor's current rate estimate for one function."""
        self.ensure_warmpath_metrics()
        self._warmpath_child(self.predicted_rps, "rps", function).set(value)

    def on_bitstream_prefetch_started(self, function: str) -> None:
        """One FPGA image finished programming ahead of demand."""
        self.ensure_warmpath_metrics()
        self._warmpath_child(
            self.bitstream_prefetch_started_total, "pf_start", function
        ).inc()

    def on_bitstream_prefetch_hit(self, function: str) -> None:
        """One FPGA start was served warm off a prefetched image."""
        self.ensure_warmpath_metrics()
        self._warmpath_child(
            self.bitstream_prefetch_hits_total, "pf_hit", function
        ).inc()

    def on_planner_drop(self, count: int) -> None:
        """The FPGA image planner dropped ``count`` predicted functions
        that did not fit the image (lazy: most runs never overflow)."""
        if self.planner_dropped_total is None:
            self.planner_dropped_total = self.registry.counter(
                "repro_fpga_planner_dropped_total",
                "Predicted-hot functions dropped from FPGA image plans "
                "by the max_instances packing cap.",
            )
        if count:
            self.planner_dropped_total.inc(count)

    # -- hedging engine hooks ----------------------------------------------------------

    def ensure_hedge_metrics(self) -> None:
        """Register the hedging metric families on first use."""
        if self.hedge_fired_total is not None:
            return
        r = self.registry
        self.hedge_fired_total = r.counter(
            "repro_hedge_fired",
            "Hedge clones launched after the percentile trigger fired "
            "with the primary copy still in flight.",
            ("function",),
        )
        self.hedge_won_total = r.counter(
            "repro_hedge_won",
            "Hedged requests answered by the clone (the primary lost "
            "the first-wins race).",
            ("function",),
        )
        self.hedge_cancelled_total = r.counter(
            "repro_hedge_cancelled",
            "Hedge clones torn down at a cancellation checkpoint after "
            "the primary answered first.",
            ("function",),
        )
        self.hedge_wasted_seconds_total = r.counter(
            "repro_hedge_wasted_seconds",
            "Execution seconds burned by losing hedge copies and then "
            "discarded.",
            ("function",),
        )
        self.hedge_throttled_total = r.counter(
            "repro_hedge_throttled",
            "Hedge clones refused by the global token-bucket budget "
            "(out of tokens, waste ceiling, or overload brownout).",
            ("function",),
        )

    def _hedge_child(self, family, kind: str, function: str):
        key = (kind, function)
        child = self._hedge_children.get(key)
        if child is None:
            child = family.bind(function=function)
            self._hedge_children[key] = child
        return child

    def on_hedge_fired(self, function: str) -> None:
        """One hedge clone launched."""
        self.ensure_hedge_metrics()
        self._hedge_child(self.hedge_fired_total, "fired", function).inc()

    def on_hedge_won(self, function: str) -> None:
        """One hedged request answered by its clone."""
        self.ensure_hedge_metrics()
        self._hedge_child(self.hedge_won_total, "won", function).inc()

    def on_hedge_cancelled(self, function: str) -> None:
        """One losing hedge clone cancelled."""
        self.ensure_hedge_metrics()
        self._hedge_child(
            self.hedge_cancelled_total, "cancelled", function
        ).inc()

    def on_hedge_wasted(self, function: str, seconds: float) -> None:
        """``seconds`` of discarded execution from a losing hedge copy."""
        self.ensure_hedge_metrics()
        if seconds:
            self._hedge_child(
                self.hedge_wasted_seconds_total, "wasted", function
            ).inc(seconds)

    def on_hedge_throttled(self, function: str) -> None:
        """One hedge clone refused by the token-bucket budget."""
        self.ensure_hedge_metrics()
        self._hedge_child(
            self.hedge_throttled_total, "throttled", function
        ).inc()

    # -- overload controller hooks ------------------------------------------------------

    def ensure_overload_metrics(self) -> None:
        """Register the overload metric families on first use."""
        if self.shed_total is not None:
            return
        r = self.registry
        self.shed_total = r.counter(
            "repro_shed_total",
            "Requests shed at shard admission by the overload "
            "controller, by reason (queue_full | predicted_wait | "
            "deadline).",
            ("function", "reason"),
        )
        self.overload_limit = r.gauge(
            "repro_overload_limit",
            "Adaptive AIMD concurrency limit per gateway shard "
            "(snapshot time).",
            ("shard",),
        )
        self.overload_queue_depth = r.gauge(
            "repro_overload_queue_depth",
            "Bounded admission-queue depth per gateway shard "
            "(snapshot time).",
            ("shard",),
        )
        self.overload_pressure = r.gauge(
            "repro_overload_pressure",
            "Saturation signal: worst shard's queue-fill x limit "
            "utilization (snapshot time).",
        )
        self.brownout_transitions_total = r.counter(
            "repro_overload_brownout_total",
            "Brownout state transitions (enter | exit).",
            ("state",),
        )

    def on_shed(self, function: str, reason: str) -> None:
        """One request shed at admission."""
        self.ensure_overload_metrics()
        key = (function, reason)
        child = self._shed_children.get(key)
        if child is None:
            child = self.shed_total.bind(function=function, reason=reason)
            self._shed_children[key] = child
        child.inc()

    def on_brownout(self, active: bool) -> None:
        """The brownout state machine transitioned."""
        self.ensure_overload_metrics()
        state = "enter" if active else "exit"
        child = self._brownout_children.get(state)
        if child is None:
            child = self.brownout_transitions_total.bind(state=state)
            self._brownout_children[state] = child
        child.inc()

    def on_dead_letter_overflow(self) -> None:
        """A bounded dead-letter queue evicted its oldest entry (lazy:
        only bounded queues that actually overflow ever see it)."""
        if self.dead_letter_overflow_total is None:
            self.dead_letter_overflow_total = self.registry.counter(
                "repro_dead_letter_overflow_total",
                "Dead letters evicted (drop-oldest) by a bounded "
                "dead-letter queue at capacity.",
            )
        self.dead_letter_overflow_total.inc()

    # -- fan-out engine hooks -----------------------------------------------------------

    def ensure_fanout_metrics(self) -> None:
        """Register the fan-out metric families on first use."""
        if self.fanout_jobs_total is not None:
            return
        r = self.registry
        self.fanout_jobs_total = r.counter(
            "repro_fanout_jobs",
            "Fan-out jobs (map / map_reduce) submitted to the futures "
            "engine.",
            ("function",),
        )
        self.fanout_tasks_total = r.counter(
            "repro_fanout_tasks",
            "Per-partition fan-out tasks by terminal fate "
            "(done | shed | error).",
            ("function", "outcome"),
        )
        self.fanout_batches_total = r.counter(
            "repro_fanout_batches",
            "Deterministic admission chunks dispatched by the batched "
            "fan-out submitter.",
        )
        self.fanout_speculations_total = r.counter(
            "repro_fanout_speculations",
            "Straggler partitions speculatively re-executed through the "
            "hedging clone path during gather.",
            ("function",),
        )

    def _fanout_child(self, family, kind: str, *labels: str):
        key = (kind,) + labels
        child = self._fanout_children.get(key)
        if child is None:
            if family is self.fanout_tasks_total:
                child = family.bind(function=labels[0], outcome=labels[1])
            else:
                child = family.bind(function=labels[0])
            self._fanout_children[key] = child
        return child

    def on_fanout_job(self, function: str) -> None:
        """One fan-out job submitted."""
        self.ensure_fanout_metrics()
        self._fanout_child(self.fanout_jobs_total, "job", function).inc()

    def on_fanout_task(self, function: str, outcome: str) -> None:
        """One partition task reached its terminal fate."""
        self.ensure_fanout_metrics()
        self._fanout_child(
            self.fanout_tasks_total, "task", function, outcome
        ).inc()

    def on_fanout_batch(self) -> None:
        """One admission chunk dispatched."""
        self.ensure_fanout_metrics()
        self.fanout_batches_total.inc()

    def on_fanout_speculated(self, function: str) -> None:
        """One straggler partition speculatively re-executed."""
        self.ensure_fanout_metrics()
        self._fanout_child(
            self.fanout_speculations_total, "spec", function
        ).inc()

    # -- result-cache engine hooks --------------------------------------------------------

    def ensure_reuse_metrics(self) -> None:
        """Register the result-cache metric families on first use."""
        if self.reuse_hits_total is not None:
            return
        r = self.registry
        self.reuse_hits_total = r.counter(
            "repro_reuse_hits",
            "Requests answered from the result cache, by freshness "
            "(fresh | singleflight | stale).",
            ("function", "freshness"),
        )
        self.reuse_misses_total = r.counter(
            "repro_reuse_misses",
            "Cache consults that found no servable entry and led a "
            "single-flight execution.",
            ("function",),
        )
        self.reuse_stale_total = r.counter(
            "repro_reuse_stale",
            "Expired entries served stale, by trigger "
            "(pressure | deadline | shed).",
            ("reason",),
        )
        self.reuse_bypass_total = r.counter(
            "repro_reuse_bypass",
            "Requests that skipped the cache consult, by reason "
            "(probe | nonidempotent | no_key).",
            ("reason",),
        )
        self.reuse_singleflight_total = r.counter(
            "repro_reuse_singleflight",
            "Followers fanned a single-flight leader's result instead "
            "of executing their own copy.",
            ("function",),
        )
        self.reuse_evictions_total = r.counter(
            "repro_reuse_evictions",
            "Entries evicted by the cache's LRU/GDSF policy.",
        )
        self.reuse_invalidations_total = r.counter(
            "repro_reuse_invalidations",
            "Entries dropped by an invalidating deploy of their "
            "function.",
        )
        self.reuse_cache_entries = r.gauge(
            "repro_reuse_cache_entries",
            "Entries resident in the result cache.",
        )
        self.reuse_cache_bytes = r.gauge(
            "repro_reuse_cache_bytes",
            "Bytes resident in the result cache.",
        )
        self.reuse_hit_ratio = r.gauge(
            "repro_reuse_hit_ratio",
            "Cached answers over all cache-consulting answers.",
        )

    def _reuse_child(self, family, kind: str, *labels: str):
        key = (kind,) + labels
        child = self._reuse_children.get(key)
        if child is None:
            if family is self.reuse_hits_total:
                child = family.bind(function=labels[0], freshness=labels[1])
            elif family in (self.reuse_stale_total, self.reuse_bypass_total):
                child = family.bind(reason=labels[0])
            else:
                child = family.bind(function=labels[0])
            self._reuse_children[key] = child
        return child

    def on_reuse_hit(self, function: str, freshness: str) -> None:
        """One request answered from the result cache."""
        self.ensure_reuse_metrics()
        self._reuse_child(
            self.reuse_hits_total, "hit", function, freshness
        ).inc()

    def on_reuse_miss(self, function: str) -> None:
        """One cache consult found nothing servable."""
        self.ensure_reuse_metrics()
        self._reuse_child(self.reuse_misses_total, "miss", function).inc()

    def on_reuse_stale(self, reason: str) -> None:
        """One expired entry served stale."""
        self.ensure_reuse_metrics()
        self._reuse_child(self.reuse_stale_total, "stale", reason).inc()

    def on_reuse_bypass(self, reason: str) -> None:
        """One request skipped the cache consult."""
        self.ensure_reuse_metrics()
        self._reuse_child(self.reuse_bypass_total, "bypass", reason).inc()

    def on_reuse_singleflight(self, function: str, served: int) -> None:
        """``served`` followers fanned one leader's result."""
        self.ensure_reuse_metrics()
        if served:
            self._reuse_child(
                self.reuse_singleflight_total, "sf", function
            ).inc(served)

    def on_reuse_evicted(self, count: int) -> None:
        """``count`` entries evicted to make room."""
        self.ensure_reuse_metrics()
        if count:
            self.reuse_evictions_total.inc(count)

    def on_reuse_invalidated(self, count: int) -> None:
        """``count`` entries dropped by an invalidating deploy."""
        self.ensure_reuse_metrics()
        if count:
            self.reuse_invalidations_total.inc(count)

    def on_reuse_cache_state(self, entries: int, nbytes: int,
                             hit_ratio: float) -> None:
        """Refresh the cache-occupancy gauges."""
        self.ensure_reuse_metrics()
        self.reuse_cache_entries.set(entries)
        self.reuse_cache_bytes.set(nbytes)
        self.reuse_hit_ratio.set(hit_ratio)

    # -- sim kernel hooks ----------------------------------------------------------------

    def ensure_kernel_metrics(self) -> None:
        """Register the sim-kernel metric families on first use."""
        if self.kernel_events_processed is not None:
            return
        r = self.registry
        self.kernel_events_processed = r.gauge(
            "repro_kernel_events_processed",
            "Events dispatched by the sim kernel since construction.",
        )
        self.kernel_batches_drained = r.gauge(
            "repro_kernel_batches_drained",
            "Timestep batches drained by the batched event loop.",
        )
        self.kernel_heap_ops_avoided = r.gauge(
            "repro_kernel_heap_ops_avoided",
            "Events dispatched without a heap pop of their own (drained "
            "from a timestep batch or the URGENT lane).",
        )
        self.kernel_mean_batch_size = r.gauge(
            "repro_kernel_mean_batch_size",
            "Mean events dispatched per drained timestep batch.",
        )
        self.kernel_dispatched = r.gauge(
            "repro_kernel_dispatched",
            "Events dispatched by the sim kernel, by record kind.",
            ("kind",),
        )
        self.kernel_slab_hit_rate = r.gauge(
            "repro_kernel_slab_hit_rate",
            "Fraction of record allocations served by the slab "
            "free-lists, by record kind.",
            ("kind",),
        )

    def record_kernel_profile(self, profile: dict) -> None:
        """Publish a :meth:`Simulator.kernel_profile` snapshot.

        Lazy by design: golden runs that never publish a profile keep a
        byte-identical metric catalog.
        """
        self.ensure_kernel_metrics()
        self.kernel_events_processed.set(profile["events_processed"])
        self.kernel_batches_drained.set(profile["batches_drained"])
        self.kernel_heap_ops_avoided.set(profile["heap_ops_avoided"])
        self.kernel_mean_batch_size.set(profile["mean_batch_size"])
        children = self._kernel_children
        for kind, count in profile["dispatched_by_kind"].items():
            key = ("dispatched", kind)
            child = children.get(key)
            if child is None:
                child = self.kernel_dispatched.bind(kind=kind)
                children[key] = child
            child.set(count)
        for kind, entry in profile["slab"].items():
            key = ("slab", kind)
            child = children.get(key)
            if child is None:
                child = self.kernel_slab_hit_rate.bind(kind=kind)
                children[key] = child
            child.set(entry["hit_rate"])

    def on_nipc_dropped(self) -> None:
        """One XPU-FIFO message dropped by an injected fault."""
        self.nipc_dropped_total.inc()

    def on_nipc_delayed(self) -> None:
        """One XPU-FIFO message delayed by an injected fault."""
        self.nipc_delayed_total.inc()
