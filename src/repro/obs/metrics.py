"""Prometheus-style metrics primitives over simulated time.

A :class:`MetricsRegistry` holds named metric *families*; each family
carries a fixed label schema and materialises one child series per
distinct label-value tuple (``repro_requests_total{function="f",...}``).
Three instrument kinds are supported:

* :class:`Counter` — monotonically increasing totals;
* :class:`Gauge` — set/inc/dec point-in-time values;
* :class:`Histogram` — fixed bucket boundaries plus p50/p95/p99
  quantile estimation by linear interpolation within buckets.

The registry renders both the Prometheus text exposition format
(:meth:`MetricsRegistry.expose`) and a JSON-able dict
(:meth:`MetricsRegistry.to_dict`) that ``analysis.report`` and the
benchmark scripts consume.  Everything is deterministic: families
render in registration order, series in sorted label order.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Optional, Sequence

from repro.errors import ReproError


class ObsError(ReproError):
    """Invalid metric definition or usage."""


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets in seconds: 100us .. 100s, roughly
#: logarithmic — wide enough for both XPUcall round trips (~20-100us)
#: and FPGA reprogramming (~4s).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)


def _format_value(value: float) -> str:
    """Prometheus-style number rendering (integers without a dot)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _render_labels(labelnames: Sequence[str], labelvalues: Sequence[str],
                   extra: Sequence[tuple[str, str]] = ()) -> str:
    pairs = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    pairs.extend(f'{name}="{_escape_label(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self):
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ObsError(f"counter increment must be >= 0: {amount}")
        self._value += amount

    def _to_dict(self) -> dict:
        return {"value": self._value}

    def _expose(self, name: str, labels: str) -> list[str]:
        return [f"{name}{labels} {_format_value(self._value)}"]


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self):
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current value."""
        return self._value

    def set(self, value: float) -> None:
        """Replace the value."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self._value -= amount

    def _to_dict(self) -> dict:
        return {"value": self._value}

    def _expose(self, name: str, labels: str) -> list[str]:
        return [f"{name}{labels} {_format_value(self._value)}"]


class Histogram:
    """Observations bucketed at fixed boundaries.

    Quantiles are estimated Prometheus-style: find the bucket where the
    cumulative count crosses ``q * count`` and interpolate linearly
    between its lower and upper bound.  Observations beyond the last
    finite boundary land in the implicit ``+Inf`` bucket, whose
    estimate is clamped to the last finite boundary.  A histogram with
    zero observations has no quantiles (``nan``).
    """

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObsError("histogram needs at least one bucket boundary")
        if list(bounds) != sorted(set(bounds)):
            raise ObsError(f"bucket boundaries must be strictly increasing: {bounds}")
        if bounds[-1] == math.inf:
            bounds = bounds[:-1]
        self.bounds = bounds + (math.inf,)
        self._counts = [0] * len(self.bounds)
        self._sum = 0.0
        self._count = 0

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._sum += value
        self._count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self._counts[i] += 1
                return

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative (upper_bound, count) pairs, Prometheus-style."""
        out = []
        cumulative = 0
        for bound, count in zip(self.bounds, self._counts):
            cumulative += count
            out.append((bound, cumulative))
        return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]; nan when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile out of range [0, 1]: {q}")
        if self._count == 0:
            return math.nan
        target = q * self._count
        cumulative = 0
        lower = 0.0
        for bound, count in zip(self.bounds, self._counts):
            if cumulative + count >= target:
                if count == 0 or bound == math.inf:
                    return lower
                fraction = (target - cumulative) / count
                return lower + (bound - lower) * fraction
            cumulative += count
            lower = bound
        return lower  # pragma: no cover - +Inf bucket always crosses

    @property
    def p50(self) -> float:
        """Median estimate."""
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        """95th percentile estimate."""
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        """99th percentile estimate."""
        return self.quantile(0.99)

    def _to_dict(self) -> dict:
        return {
            "count": self._count,
            "sum": self._sum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": {
                _format_value(bound): cumulative
                for bound, cumulative in self.bucket_counts()
            },
        }

    def _expose(self, name: str, labels: str) -> list[str]:
        raise NotImplementedError  # rendered by the family (needs le label)


class MetricFamily:
    """One named metric with a fixed label schema and many children."""

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        child_factory,
        kind: str,
        max_series: int,
    ):
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self.kind = kind
        self.max_series = max_series
        self._child_factory = child_factory
        self._children: dict[tuple[str, ...], object] = {}
        #: Memoized label-less child (label-less families are their own
        #: single series; resolving it per observation is wasted work).
        self._single: object = None

    def labels(self, **labelvalues):
        """The child series for one label-value assignment.

        Every declared label must be given, and nothing else — silent
        label drift is how dashboards rot.
        """
        given = set(labelvalues)
        declared = set(self.labelnames)
        if given != declared:
            missing = declared - given
            extra = given - declared
            raise ObsError(
                f"metric {self.name!r} labels mismatch: "
                f"missing={sorted(missing)} unexpected={sorted(extra)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= self.max_series:
                raise ObsError(
                    f"metric {self.name!r} exceeded {self.max_series} series; "
                    f"a label is unbounded (offending values: {key})"
                )
            child = self._child_factory()
            self._children[key] = child
        return child

    def bind(self, **labelvalues):
        """Resolve one label assignment to its child handle, once.

        Identical to :meth:`labels`, but named for its intended use:
        resolve at *wiring time* and keep the returned handle, calling
        ``inc``/``set``/``observe`` on it directly — hot paths should
        never pay the label-dict validation per observation.
        """
        return self.labels(**labelvalues)

    def _default_child(self):
        child = self._single
        if child is None:
            if self.labelnames:
                raise ObsError(
                    f"metric {self.name!r} has labels {list(self.labelnames)}; "
                    "use .labels(...)"
                )
            child = self._single = self.labels()
        return child

    # Label-less convenience: the family acts as its single child.

    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less series."""
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the label-less gauge series."""
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        """Set the label-less gauge series."""
        self._default_child().set(value)

    def observe(self, value: float) -> None:
        """Observe into the label-less histogram series."""
        self._default_child().observe(value)

    @property
    def value(self) -> float:
        """Value of the label-less series."""
        return self._default_child().value

    def series(self) -> list[tuple[dict[str, str], object]]:
        """(labels dict, child) pairs in sorted label order."""
        return [
            (dict(zip(self.labelnames, key)), child)
            for key, child in sorted(self._children.items())
        ]

    def total(self) -> float:
        """Sum of all children (counters/gauges only)."""
        if self.kind == "histogram":
            raise ObsError(f"histogram family {self.name!r} has no total()")
        return sum(child.value for _labels, child in self.series())

    # -- rendering ----------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able view of the family."""
        return {
            "type": self.kind,
            "help": self.help_text,
            "series": [
                {"labels": labels, **child._to_dict()}
                for labels, child in self.series()
            ],
        }

    def expose(self) -> list[str]:
        """Prometheus text-format lines for the family."""
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key, child in sorted(self._children.items()):
            if self.kind == "histogram":
                for bound, cumulative in child.bucket_counts():
                    labels = _render_labels(
                        self.labelnames, key, extra=(("le", _format_value(bound)),)
                    )
                    lines.append(f"{self.name}_bucket{labels} {cumulative}")
                labels = _render_labels(self.labelnames, key)
                lines.append(f"{self.name}_sum{labels} {_format_value(child.sum)}")
                lines.append(f"{self.name}_count{labels} {child.count}")
            else:
                labels = _render_labels(self.labelnames, key)
                lines.extend(child._expose(self.name, labels))
        return lines


class MetricsRegistry:
    """All metric families of one runtime, in registration order."""

    def __init__(self, max_series_per_family: int = 1000):
        self.max_series_per_family = max_series_per_family
        self._families: dict[str, MetricFamily] = {}

    def _register(self, name, help_text, labelnames, factory, kind) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ObsError(f"invalid metric name: {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label) or label == "le":
                raise ObsError(f"invalid label name for {name!r}: {label!r}")
        if name in self._families:
            raise ObsError(f"metric {name!r} already registered")
        family = MetricFamily(
            name, help_text, labelnames, factory, kind, self.max_series_per_family
        )
        self._families[name] = family
        return family

    def counter(self, name: str, help_text: str,
                labelnames: Sequence[str] = ()) -> MetricFamily:
        """Register a counter family."""
        return self._register(name, help_text, labelnames, Counter, "counter")

    def gauge(self, name: str, help_text: str,
              labelnames: Sequence[str] = ()) -> MetricFamily:
        """Register a gauge family."""
        return self._register(name, help_text, labelnames, Gauge, "gauge")

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Register a histogram family with fixed bucket boundaries."""
        bounds = tuple(buckets)
        return self._register(
            name, help_text, labelnames, lambda: Histogram(bounds), "histogram"
        )

    def get(self, name: str) -> MetricFamily:
        """Family by name (raises for unknown names)."""
        try:
            return self._families[name]
        except KeyError:
            raise ObsError(f"unknown metric {name!r}") from None

    def families(self) -> Iterable[MetricFamily]:
        """All families in registration order."""
        return self._families.values()

    def to_dict(self) -> dict:
        """JSON-able snapshot of every family."""
        return {name: family.to_dict() for name, family in self._families.items()}

    def expose(self) -> str:
        """The full Prometheus text exposition."""
        lines: list[str] = []
        for family in self._families.values():
            lines.extend(family.expose())
        return "\n".join(lines) + ("\n" if lines else "")
