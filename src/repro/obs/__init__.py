"""``repro.obs``: the unified observability layer.

Metrics (:mod:`repro.obs.metrics`) + per-invocation lifecycle spans
(:mod:`repro.obs.spans`), tied together by the
:class:`~repro.obs.observability.Observability` hub that
``core.molecule`` wires into every runtime layer.  See
``docs/observability.md`` for the metric catalog and label
conventions.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    ObsError,
)
from repro.obs.observability import Observability
from repro.obs.spans import (
    LIFECYCLE_PHASES,
    NULL_TRACE,
    NullRequestTrace,
    RequestTrace,
    START_COLD,
    START_FORK,
    START_WARM,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "LIFECYCLE_PHASES",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_TRACE",
    "NullRequestTrace",
    "Observability",
    "ObsError",
    "RequestTrace",
    "START_COLD",
    "START_FORK",
    "START_WARM",
]
