"""Command-line interface.

Usage::

    python -m repro list                 # available experiments
    python -m repro run fig2a fig8      # run selected experiments
    python -m repro run all             # run everything
    python -m repro report              # emit EXPERIMENTS.md to stdout
    python -m repro metrics              # demo run + metrics exposition
    python -m repro faults --check       # fault scenarios, zero-lost gate
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro import config
from repro.analysis import ablations
from repro.analysis import experiments as ex
from repro.analysis.report import format_table


def _print_fig2a():
    result = ex.fig2a_density()
    print(format_table(
        ["configuration", "measured", "paper"],
        [(k, result.measured[k], result.paper[k]) for k in result.paper],
    ))


def _print_fig2b():
    result = ex.fig2b_fpga_matrix()
    print(format_table(
        ["kernel", "cpu (us)", "fpga (us)", "speedup"],
        [(r.name, f"{r.cpu_us:.0f}", f"{r.fpga_us:.0f}", f"{r.speedup:.2f}x")
         for r in result.rows],
    ))


def _print_fig8():
    result = ex.fig8_nipc()
    sizes = sorted(next(iter(result.series.values())))
    print(format_table(
        ["series \\ bytes", *map(str, sizes)],
        [(name, *(f"{result.series[name][s]:.1f}" for s in sizes))
         for name in result.series],
    ))


def _print_fig9():
    result = ex.fig9_commercial()
    print(format_table(
        ["system", "startup (ms)", "comm (ms)"],
        [(r.system, f"{r.startup_ms:.2f}", f"{r.comm_ms:.3f}") for r in result.rows],
    ))


def _print_fig10():
    result = ex.fig10_startup()
    print(format_table(
        ["pu", "language", "baseline (ms)", "cfork-local (ms)", "cfork-XPU (ms)"],
        [(r.pu, r.language, f"{r.baseline_local_ms:.1f}",
          f"{r.cfork_local_ms:.1f}", f"{r.cfork_xpu_ms:.1f}") for r in result.rows],
    ))
    print(format_table(
        ["fpga configuration", "latency (s)"],
        [(r.configuration, f"{r.seconds:.3f}") for r in result.fpga_rows],
    ))


def _print_fig11():
    result = ex.fig11a_cfork_breakdown()
    print(format_table(
        ["stage", "measured (ms)", "paper (ms)"],
        [(k, f"{result.measured_ms[k]:.2f}", f"{v:.2f}")
         for k, v in result.paper_ms.items()],
    ))
    memory = ex.fig11bc_memory()
    print(format_table(
        ["instances", "base RSS", "mol RSS", "base PSS", "mol PSS"],
        [(n, f"{memory.baseline_rss[i]:.1f}", f"{memory.molecule_rss[i]:.1f}",
          f"{memory.baseline_pss[i]:.1f}", f"{memory.molecule_pss[i]:.1f}")
         for i, n in enumerate(memory.instance_counts)],
    ))


def _print_fig12():
    result = ex.fig12_dag_comm()
    for case in result.cases:
        print(f"-- {case.case} --")
        print(format_table(
            ["edge", "baseline (ms)", "molecule (ms)", "speedup"],
            [(e, f"{b:.2f}", f"{m:.3f}", f"{b / m:.1f}x")
             for e, b, m in zip(case.edge_names, case.baseline_ms, case.molecule_ms)],
        ))


def _print_fig13():
    result = ex.fig13_fpga_chain()
    print(format_table(
        ["chain length", "copying (us)", "shm (us)"],
        [(n, f"{c:.0f}", f"{s:.0f}")
         for n, c, s in zip(result.lengths, result.copying_us, result.shm_us)],
    ))


def _print_fig14(variant: str) -> Callable[[], None]:
    def printer():
        result = ex.fig14_functionbench(variant)
        print(format_table(
            ["workload", "baseline (ms)", "molecule (ms)", "speedup"],
            [(r.workload, f"{r.baseline_ms:.1f}", f"{r.molecule_ms:.1f}",
              f"{r.speedup:.2f}x") for r in result.rows],
        ))
    return printer


def _print_fig14e():
    result = ex.fig14e_chains()
    print(format_table(
        ["application", "case", "baseline (ms)", "molecule (ms)", "speedup"],
        [(r.application, r.case, f"{r.baseline_ms:.1f}", f"{r.molecule_ms:.1f}",
          f"{r.speedup:.2f}x") for r in result.rows],
    ))


def _print_fig14f():
    result = ex.fig14f_gzip()
    print(format_table(
        ["file (MB)", "cpu (ms)", "fpga (ms)"],
        [(s, f"{c:.1f}", f"{f:.1f}")
         for s, c, f in zip(result.inputs, result.cpu_ms, result.fpga_ms)],
    ))


def _print_fig14g():
    result = ex.fig14g_aml()
    print(format_table(
        ["entries", "cpu (ms)", "fpga (ms)", "speedup"],
        [(int(n), f"{c:.2f}", f"{f:.2f}", f"{c / f:.1f}x")
         for n, c, f in zip(result.inputs, result.cpu_ms, result.fpga_ms)],
    ))


def _print_fig14h():
    result = ex.fig14h_matrix()
    print(f"matrix-comput: cpu {result.cpu_ms[0]:.2f}ms "
          f"fpga {result.fpga_ms[0]:.2f}ms ({result.speedup_at(0):.2f}x)")


def _print_table4():
    result = ex.table4_fpga_resources()
    print(format_table(
        ["resource", "F1 total", "wrapper", "fraction"],
        [(k, f"{result.totals[k]:,.0f}", f"{result.wrapper[k]:,.0f}",
          f"{result.fractions[k]:.1%}") for k in ("luts", "regs", "brams", "dsps")],
    ))


def _print_table5():
    matrix = ex.table5_generality()
    print(format_table(
        ["pu", "kind", "v.sandbox", "communication", "model"],
        [(name, row["kind"], row["vectorized_sandbox"], row["communication"],
          row["programming_model"]) for name, row in matrix.items()],
    ))


def _print_fig15():
    print(format_table(
        ["system", "startup", "same-PU comm", "cross-PU comm"],
        [(p.system, p.startup_class, p.same_pu_comm, p.cross_pu_comm)
         for p in ex.fig15_design_space()],
    ))


def _print_ablations():
    print(format_table(
        ["pu", "transport", "round trip (us)"],
        [(r.pu, r.transport, f"{r.round_trip_us:.1f}")
         for r in ablations.xpucall_transport_ablation()],
    ))
    sync = ablations.sync_strategy_ablation()
    print(f"sync: static 0us, immediate {sync.immediate_us:.1f}us, lazy 0us")
    bus = ablations.dag_direct_vs_bus()
    print(f"dag: direct {bus.direct_total_ms:.2f}ms vs bus "
          f"{bus.bus_total_ms:.2f}ms ({bus.improvement:.2f}x)")


EXPERIMENTS: dict[str, Callable[[], None]] = {
    "fig2a": _print_fig2a,
    "fig2b": _print_fig2b,
    "fig8": _print_fig8,
    "fig9": _print_fig9,
    "fig10": _print_fig10,
    "fig11": _print_fig11,
    "fig12": _print_fig12,
    "fig13": _print_fig13,
    "fig14a": _print_fig14("cold_cpu"),
    "fig14b": _print_fig14("warm_cpu"),
    "fig14c": _print_fig14("cold_bf1"),
    "fig14d": _print_fig14("cold_bf2"),
    "fig14e": _print_fig14e,
    "fig14f": _print_fig14f,
    "fig14g": _print_fig14g,
    "fig14h": _print_fig14h,
    "table4": _print_table4,
    "table5": _print_table5,
    "fig15": _print_fig15,
    "ablations": _print_ablations,
}


def _plot_fig2a():
    from repro.analysis.charts import bar_chart

    result = ex.fig2a_density()
    print(bar_chart(result.measured, unit=" instances"))


def _plot_fig8():
    from repro.analysis.charts import line_chart

    result = ex.fig8_nipc()
    sizes = sorted(next(iter(result.series.values())))
    series = {name: [result.series[name][s] for s in sizes] for name in result.series}
    print(line_chart(series, x_labels=[f"{sizes[0]}B", f"{sizes[-1]}B"]))


def _plot_fig9():
    from repro.analysis.charts import bar_chart

    result = ex.fig9_commercial()
    print("startup latency (ms, log scale):")
    print(bar_chart({r.system: r.startup_ms for r in result.rows}, log_scale=True))
    print("\ncommunication latency (ms, log scale):")
    print(bar_chart({r.system: r.comm_ms for r in result.rows}, log_scale=True))


def _plot_fig13():
    from repro.analysis.charts import line_chart

    result = ex.fig13_fpga_chain()
    print(line_chart(
        {"copying (us)": result.copying_us, "shm (us)": result.shm_us},
        x_labels=[result.lengths[0], result.lengths[-1]],
    ))


def _plot_fig14f():
    from repro.analysis.charts import line_chart

    result = ex.fig14f_gzip()
    print(line_chart(
        {"cpu (ms)": result.cpu_ms, "fpga (ms)": result.fpga_ms},
        x_labels=[f"{result.inputs[0]}MB", f"{result.inputs[-1]}MB"],
    ))


def _plot_fig14e():
    from repro.analysis.charts import speedup_chart

    result = ex.fig14e_chains()
    print(speedup_chart({
        f"{r.application}/{r.case}": (r.baseline_ms, r.molecule_ms)
        for r in result.rows
    }))


PLOTS: dict[str, Callable[[], None]] = {
    "fig2a": _plot_fig2a,
    "fig8": _plot_fig8,
    "fig9": _plot_fig9,
    "fig13": _plot_fig13,
    "fig14e": _plot_fig14e,
    "fig14f": _plot_fig14f,
}


def _run_metrics_demo():
    """A quickstart-style run exercising cold, fork and warm paths."""
    from repro import (
        FunctionCode,
        FunctionDef,
        Language,
        MoleculeRuntime,
        PuKind,
        WorkProfile,
    )

    molecule = MoleculeRuntime.create(num_dpus=1)
    hello = FunctionDef(
        name="hello",
        code=FunctionCode("hello", language=Language.PYTHON, import_ms=120.0),
        work=WorkProfile(warm_exec_ms=15.0),
        profiles=(PuKind.CPU, PuKind.DPU),
    )
    molecule.deploy_now(hello)  # boots cfork templates -> fork starts
    molecule.invoke_now("hello", kind=PuKind.CPU)   # fork start
    molecule.invoke_now("hello", kind=PuKind.CPU)   # warm start
    molecule.invoke_now("hello", kind=PuKind.DPU)   # fork on the DPU
    bare = FunctionDef(
        name="bare",
        code=FunctionCode("bare", language=Language.NODEJS, import_ms=200.0),
        work=WorkProfile(warm_exec_ms=8.0),
    )
    molecule.registry.register(bare)  # no deploy: no template to fork
    molecule.invoke_now("bare")       # baseline cold start
    return molecule


def _print_metrics(as_json: bool) -> None:
    import json

    from repro.analysis.report import (
        format_phase_breakdown,
        format_reliability,
        format_start_kinds,
    )

    molecule = _run_metrics_demo()
    if as_json:
        print(json.dumps(molecule.metrics_snapshot(), indent=2, sort_keys=True))
        return
    snapshot = molecule.metrics_snapshot()
    print("== start kinds ==")
    print(format_start_kinds(snapshot))
    print()
    print("== lifecycle phases ==")
    print(format_phase_breakdown(snapshot))
    print()
    print("== reliability ==")
    print(format_reliability(snapshot))
    print()
    print("== exposition ==")
    print(molecule.metrics_exposition(), end="")


def _print_faults(args) -> int:
    """``repro faults``: run fault scenarios and report the accounting."""
    import json

    from repro.analysis.report import format_reliability, format_table
    from repro.faults import FaultPlan, run_scenario, scenario_names

    names = args.scenarios or scenario_names()
    unknown = [name for name in names if name not in scenario_names()]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(scenario_names())}", file=sys.stderr)
        return 2
    plan = None
    if args.plan:
        with open(args.plan, encoding="utf-8") as handle:
            plan = FaultPlan.from_json(handle.read())
    lost_total = 0
    for name in names:
        summary = run_scenario(name, seed=args.seed, plan=plan)
        lost_total += summary["lost"]
        if args.json:
            summary.pop("snapshot")
            print(json.dumps(summary, indent=2, sort_keys=True, default=str))
            continue
        print(f"=== {name} (seed {summary['seed']}) ===")
        print(format_table(
            ["submitted", "answered", "dead-lettered", "lost",
             "retried", "degraded"],
            [(summary["submitted"], summary["answered"],
              summary["dead_lettered"], summary["lost"],
              summary["retried_requests"], summary["degraded_requests"])],
        ))
        for fault in summary["faults_injected"]:
            fired_at = fault.pop("at_s")
            print(f"fault @ {fired_at:.3f}s: {fault}")
        print()
        print(format_reliability(summary["snapshot"]))
        print()
    if args.check and lost_total:
        print(f"LOST REQUESTS: {lost_total}", file=sys.stderr)
        return 1
    return 0


def _print_perf(args) -> int:
    """``repro perf``: run wall-clock benchmarks, write BENCH_perf.json."""
    import json
    import os

    from repro import perf

    try:
        report = perf.run_benchmarks(
            quick=args.quick,
            scenarios=args.scenarios or None,
            profile=args.profile,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        print(f"available: {', '.join(perf.SCENARIOS)}", file=sys.stderr)
        return 2
    # Kernel counter snapshots go to a sidecar so BENCH_perf.json's
    # schema (and its diff-friendly churn) stays unchanged.
    profiles = report.pop("profiles", None)
    perf.write_report(report, args.output)
    print(perf.format_report(report))
    print(f"\nwrote {args.output}")
    if profiles is not None:
        root, ext = os.path.splitext(args.output)
        sidecar = f"{root}_profile{ext or '.json'}"
        with open(sidecar, "w", encoding="utf-8") as handle:
            json.dump(profiles, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print()
        print(perf.format_profile(profiles))
        print(f"\nwrote {sidecar}")
    if args.compare is None:
        return 0
    with open(args.compare, encoding="utf-8") as handle:
        prior = json.load(handle)
    threshold = (
        args.threshold if args.threshold is not None
        else perf.DEFAULT_REGRESSION_THRESHOLD
    )
    regressions = perf.compare_reports(report, prior, threshold)
    print(perf.format_comparison(regressions, threshold))
    if regressions and args.fail_on_regression:
        return 1
    return 0


def _print_load(args) -> int:
    """``repro load``: run a load scenario, write BENCH_load.json."""
    import json

    from repro import loadgen

    try:
        report = loadgen.run_load(
            args.scenario,
            seed=args.seed,
            rps=args.rps,
            duration_s=args.duration,
            shards=args.shards,
            policy=args.route,
            quick=args.quick,
            mode=args.mode,
            concurrency=args.concurrency,
            keep_alive_ttl_s=args.keepalive,
            prewarm=args.prewarm,
            hedge=args.hedge,
            hedge_percentile=args.hedge_percentile,
            overload=args.overload,
            hedge_budget=args.hedge_budget,
            deadline_s=args.deadline,
            tasks=args.tasks,
            fanout_gather=not args.no_gather,
            reuse=args.reuse,
            zipf_s=args.zipf_s,
            cache_mb=args.cache_mb,
            keepalive_policy=args.keepalive_policy,
        )
    except Exception as exc:
        from repro.errors import ReproError

        if not isinstance(exc, ReproError):
            raise
        print(exc, file=sys.stderr)
        print(f"available: {', '.join(loadgen.scenario_names())}",
              file=sys.stderr)
        return 2
    loadgen.write_report(report, args.output)
    if args.json:
        stripped = dict(report)
        stripped.pop("host")
        print(json.dumps(stripped, indent=2, sort_keys=True))
    else:
        print(loadgen.format_report(report))
    print(f"\nwrote {args.output}")
    if args.compare is None:
        return 0
    with open(args.compare, encoding="utf-8") as handle:
        prior = json.load(handle)
    threshold = (
        args.threshold if args.threshold is not None
        else loadgen.slo.DEFAULT_REGRESSION_THRESHOLD
    )
    regressions = loadgen.compare_reports(report, prior, threshold)
    print(loadgen.format_comparison(regressions, threshold))
    if regressions and args.fail_on_regression:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Molecule reproduction: regenerate the paper's evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+",
                     help="experiment names, or 'all'")
    plot = sub.add_parser("plot", help="ASCII-plot a figure's shape")
    plot.add_argument("figures", nargs="+",
                      help=f"one of: {', '.join(PLOTS)}")
    sub.add_parser("report", help="emit the full EXPERIMENTS.md to stdout")
    sub.add_parser("validate", help="check every paper claim (conformance)")
    metrics = sub.add_parser(
        "metrics",
        help="run a small demo workload and dump its metrics",
    )
    metrics.add_argument("--json", action="store_true",
                         help="emit the JSON snapshot instead of tables")
    faults = sub.add_parser(
        "faults",
        help="run deterministic fault-injection scenarios",
    )
    faults.add_argument("scenarios", nargs="*",
                        help="scenario names (default: all)")
    faults.add_argument("--seed", type=int, default=None,
                        help="simulation seed (default: config default)")
    faults.add_argument("--plan", metavar="FILE", default=None,
                        help="JSON fault plan overriding the canned one")
    faults.add_argument("--json", action="store_true",
                        help="emit JSON summaries instead of tables")
    faults.add_argument("--check", action="store_true",
                        help="exit 1 if any request is lost "
                             "(neither answered nor dead-lettered)")
    perf = sub.add_parser(
        "perf",
        help="wall-clock benchmarks of the simulator's hot paths",
    )
    perf.add_argument("scenarios", nargs="*",
                      help="scenario names (default: all)")
    perf.add_argument("--quick", action="store_true",
                      help="smaller workloads for CI smoke runs")
    perf.add_argument("--output", metavar="FILE", default="BENCH_perf.json",
                      help="report path (default: BENCH_perf.json)")
    perf.add_argument("--profile", action="store_true",
                      help="also write the kernel counter snapshot "
                           "(batch sizes, slab hit rates) to "
                           "<output>_profile.json")
    perf.add_argument("--compare", metavar="FILE", default=None,
                      help="prior BENCH_perf.json to diff rates against")
    perf.add_argument("--threshold", type=float, default=None,
                      help="relative rate drop counted as a regression "
                           "(default: 0.20)")
    perf.add_argument("--fail-on-regression", action="store_true",
                      help="exit 1 when --compare finds a regression "
                           "(default: warn only)")
    load = sub.add_parser(
        "load",
        help="trace-driven load generation over sharded gateways "
             "(SLO percentiles -> BENCH_load.json)",
    )
    load.add_argument("--scenario", default="poisson",
                      help="arrival scenario: poisson, burst, diurnal, "
                           "azure, overload, fanout, zipf "
                           "(default: poisson)")
    load.add_argument("--rps", type=float, default=None,
                      help="peak arrival rate per second "
                           "(default: 200, or 40 with --quick)")
    load.add_argument("--duration", type=float, default=None,
                      help="plan duration in simulated seconds "
                           "(default: 60, or 5 with --quick)")
    load.add_argument("--shards", type=int, default=None,
                      help="gateway shard count (default: 4, or 2 with "
                           "--quick)")
    load.add_argument("--route", default="hash",
                      choices=["hash", "least-outstanding", "locality"],
                      help="shard routing policy (default: hash)")
    load.add_argument("--mode", default="open", choices=["open", "closed"],
                      help="open-loop (admit at trace time) or "
                           "closed-loop driving (default: open)")
    load.add_argument("--concurrency", type=int, default=64,
                      help="worker count for --mode closed (default: 64)")
    load.add_argument("--seed", type=int, default=None,
                      help="simulation seed (default: config default)")
    load.add_argument("--quick", action="store_true",
                      help="smaller run for CI smoke")
    load.add_argument("--prewarm", action="store_true",
                      help="arm the warm-path engine: cold-start "
                           "coalescing, predictive pre-warm and "
                           "adaptive keep-alive TTLs")
    load.add_argument("--keepalive", type=float, default=None,
                      metavar="SECONDS",
                      help="pool-wide keep-alive TTL for idle instances "
                           "(default: keep forever)")
    load.add_argument("--keepalive-policy", default="ttl",
                      choices=("ttl", "gdsf"), dest="keepalive_policy",
                      help="warm-pool eviction policy: ttl (LRU + TTL, "
                           "the default) or gdsf (FaasCache-style "
                           "greedy-dual keep-alive)")
    load.add_argument("--hedge", action="store_true",
                      help="arm the tail-latency hedging engine: clone "
                           "straggling requests onto a second PU and "
                           "take the first answer")
    load.add_argument("--hedge-percentile", type=float, default=None,
                      metavar="PCT",
                      help="latency percentile that triggers a hedge "
                           "clone (default: 95)")
    load.add_argument("--hedge-budget", type=float, default=None,
                      metavar="RATIO",
                      help="global hedge token bucket: at most RATIO "
                           "clones per answered request (implies "
                           "--hedge)")
    load.add_argument("--overload", action="store_true",
                      help="arm the overload controller: adaptive "
                           "per-shard admission, deadline-aware "
                           "shedding and brownout degradation")
    load.add_argument("--tasks", type=int, default=None,
                      metavar="N",
                      help="fanout scenario: target at least N partition "
                           "tasks (resizes the job schedule)")
    load.add_argument("--no-gather", action="store_true",
                      help="fanout scenario: disarm straggler-aware "
                           "gather (speculative re-execution)")
    load.add_argument("--reuse", action="store_true",
                      help="arm the result-cache engine: deterministic "
                           "memoization with single-flight de-dup and "
                           "stale-under-pressure serving (the zipf "
                           "scenario's A/B lever)")
    load.add_argument("--zipf-s", type=float, default=None, dest="zipf_s",
                      help="zipf/reuse: input-popularity skew "
                           "(default: 1.1)")
    load.add_argument("--cache-mb", type=float, default=None,
                      dest="cache_mb",
                      help="reuse: result-cache capacity in MB "
                           "(default: 8)")
    load.add_argument("--deadline", type=float, default=None,
                      metavar="SECONDS",
                      help="per-request deadline (default: 30, or 2 "
                           "for the overload scenario)")
    load.add_argument("--json", action="store_true",
                      help="emit the JSON report (minus host info) "
                           "instead of the summary")
    load.add_argument("--output", metavar="FILE", default="BENCH_load.json",
                      help="report path (default: BENCH_load.json)")
    load.add_argument("--compare", metavar="FILE", default=None,
                      help="prior BENCH_load.json to diff SLOs against")
    load.add_argument("--threshold", type=float, default=None,
                      help="relative SLO change counted as a regression "
                           "(default: 0.20)")
    load.add_argument("--fail-on-regression", action="store_true",
                      help="exit 1 when --compare finds a regression "
                           "(default: warn only)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.command == "report":
        from repro.analysis.writeup import generate

        print(generate(), end="")
        return 0
    if args.command == "metrics":
        _print_metrics(args.json)
        return 0
    if args.command == "faults":
        return _print_faults(args)
    if args.command == "perf":
        return _print_perf(args)
    if args.command == "load":
        return _print_load(args)
    if args.command == "validate":
        from repro.analysis.validation import scorecard, validate_all

        results = validate_all()
        print(scorecard(results))
        return 0 if all(r.passed for r in results) else 1
    if args.command == "plot":
        unknown = [name for name in args.figures if name not in PLOTS]
        if unknown:
            print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
            print(f"available: {', '.join(PLOTS)}", file=sys.stderr)
            return 2
        for name in args.figures:
            print(f"=== {name} ===")
            PLOTS[name]()
            print()
        return 0
    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        print(f"=== {name} ===")
        EXPERIMENTS[name]()
        print()
    return 0
