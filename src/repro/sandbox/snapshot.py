"""Snapshot-based startup: the other side of the Fig. 15 design space.

The paper's related work (§6.7) contrasts fork-based startup (cfork,
Catalyzer sfork) with snapshot/restore designs (Replayable Execution,
Firecracker snapshots, gVisor checkpoint/restore).  This module
implements the snapshot alternative over the same container substrate
so the two can be compared head to head:

* ``checkpoint`` serialises a warm instance's memory image to (modelled)
  storage, priced by image size over storage bandwidth;
* ``restore`` creates a new instance by loading + mapping that image —
  no template process needs to stay resident, but every restore pays
  the image read, and restored pages are private (no COW sharing, so
  none of Fig. 11's PSS savings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import config
from repro.errors import SandboxError
from repro.multios.os import OsInstance
from repro.sandbox.base import FunctionCode, Sandbox, SandboxState
from repro.sandbox.runc import ContainerBackend, RuncRuntime

#: Modelled storage bandwidth for snapshot images.  Effective restore
#: throughput is well below raw NVMe because pages fault in lazily;
#: Fig. 15 puts snapshot designs in the "fast (~50ms)" class, an order
#: above fork's "extreme (<=10ms)".
SNAPSHOT_STORAGE_GBPS = 0.5
#: Fixed (de)serialisation overhead per snapshot operation (ref CPU).
SNAPSHOT_FIXED_MS = 5.0
#: Page-table rebuild cost per MB restored (ref CPU).
RESTORE_MAP_MS_PER_MB = 0.15


@dataclass
class Snapshot:
    """A checkpointed function instance image."""

    func_id: str
    language: object
    image_mb: float
    created_at: float


class SnapshotManager:
    """Checkpoint/restore over a runc runtime."""

    def __init__(self, runc: RuncRuntime):
        self.runc = runc
        self._snapshots: dict[str, Snapshot] = {}
        self.checkpoints = 0
        self.restores = 0

    @property
    def sim(self):
        """The simulator this manager runs on."""
        return self.runc.sim

    def _storage_time(self, mb: float) -> float:
        return (mb * config.MB) / (SNAPSHOT_STORAGE_GBPS * config.GB)

    def _fixed_time(self) -> float:
        return SNAPSHOT_FIXED_MS * config.MS / self.runc.pu.spec.speed

    def checkpoint(self, sandbox_id: str):
        """Generator: snapshot a RUNNING instance to storage."""
        sandbox = self.runc.get(sandbox_id)
        sandbox.require_state(SandboxState.RUNNING)
        process = sandbox.backend.process
        if process is None or not process.alive:
            raise SandboxError(f"sandbox {sandbox_id!r} has no live process")
        image_mb = process.memory.rss_mb
        yield self.sim.timeout(self._fixed_time())
        yield self.sim.timeout(self._storage_time(image_mb))
        snapshot = Snapshot(
            func_id=sandbox.code.func_id,
            language=sandbox.code.language,
            image_mb=image_mb,
            created_at=self.sim.now,
        )
        self._snapshots[sandbox.code.func_id] = snapshot
        self.checkpoints += 1
        return snapshot

    def snapshot_for(self, func_id: str) -> Optional[Snapshot]:
        """The stored snapshot of a function, if any."""
        return self._snapshots.get(func_id)

    def restore(self, sandbox_id: str, code: FunctionCode):
        """Generator: start a new instance from the stored snapshot.

        Pays: fixed overhead + image read + page mapping.  The restored
        memory is fully private — snapshots do not share pages the way
        cfork children share the template's (§6.4 memory discussion).
        """
        snapshot = self._snapshots.get(code.func_id)
        if snapshot is None:
            raise SandboxError(f"no snapshot for function {code.func_id!r}")
        sandbox = self.runc.register(
            Sandbox(sandbox_id, code, created_at=self.sim.now)
        )
        yield self.sim.timeout(self._fixed_time())
        yield self.sim.timeout(self._storage_time(snapshot.image_mb))
        map_ms = RESTORE_MAP_MS_PER_MB * snapshot.image_mb
        yield self.sim.timeout(map_ms * config.MS / self.runc.pu.spec.speed)
        process = yield from self.runc.os.spawn(f"restored-{code.func_id}")
        process.memory.allocate_private(snapshot.image_mb)
        cgroup = self.runc.os.cgroups.create(f"snap-{sandbox_id}")
        cgroup.members.add(process)
        sandbox.backend = ContainerBackend(cgroup=cgroup, process=process)
        sandbox.state = SandboxState.RUNNING
        sandbox.started_at = self.sim.now
        self.restores += 1
        return sandbox
