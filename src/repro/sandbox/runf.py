"""``runf``: the vectorized sandbox runtime for FPGA functions (§3.5).

``runf`` maintains FPGA serverless instance states and drives the
device: *create* programs a bitstream (a whole **vector** of sandboxes
packed into one image), *start* prepares the software sandbox that
feeds a resident kernel, and *delete* is intentionally **empty** — the
flushed kernels occupy no reclaimable resource and are replaced by the
next create, which never pays an erase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro import config
from repro.errors import FaultInjectedError, SandboxError, SandboxStateError
from repro.hardware.fpga import FpgaDevice, FpgaImage, KernelInstance
from repro.sandbox.base import (
    FunctionCode,
    Sandbox,
    SandboxRuntime,
    SandboxState,
    SignalNum,
)


@dataclass
class FpgaBackend:
    """Backend data of one FPGA sandbox."""

    instance: KernelInstance
    image_name: str
    #: True once the software sandbox has been prepared (warm).
    warmed: bool = False


class RunfRuntime(SandboxRuntime):
    """FPGA sandbox runtime over one device."""

    runtime_name = "runf"

    def __init__(self, sim, device: FpgaDevice, no_erase: bool = True):
        super().__init__(sim)
        self.device = device
        #: Molecule's optimisation: skip the erase before programming.
        self.no_erase = no_erase
        self._image_seq = 0
        #: Sandboxes resident in the current image, by sandbox id.
        self._resident: dict[str, Sandbox] = {}

    # -- OCI scalar interface (degenerates to a 1-sized vector) -------------------------

    def create(self, sandbox_id: str, code: FunctionCode):
        """OCI ``create``: program an image holding this one sandbox."""
        created = yield from self.create_vector([(sandbox_id, code)])
        return created[0]

    def create_vector(self, entries: Sequence[tuple[str, FunctionCode]]):
        """Vectorized ``create``: pack all sandboxes into ONE image and
        flush it once (§3.5).

        This implicitly destroys the previous image's sandboxes — the
        deferred "real destroy" of the empty ``delete`` verb.
        """
        if not entries:
            raise SandboxError("create_vector needs at least one sandbox")
        began = self.sim.now
        kernels = []
        for _sandbox_id, code in entries:
            if code.kernel is None:
                raise SandboxError(
                    f"function {code.func_id!r} has no FPGA kernel"
                )
            kernels.append(code.kernel)
        self._image_seq += 1
        image = FpgaImage(f"image-{self._image_seq}", kernels)
        try:
            yield from self.device.program(image, erase_first=not self.no_erase)
        except FaultInjectedError:
            # A failed bitstream load leaves the fabric without a valid
            # image: the previous residents are gone too.
            self._drop_residents()
            raise
        # Previous residents are gone now (deferred destroy).
        for old in self._resident.values():
            if old.state is not SandboxState.DELETED:
                old.state = SandboxState.DELETED
            self.forget(old.sandbox_id)
        self._resident.clear()
        for bank in self.device.banks:
            bank.owner_slot = None
        created = []
        for (sandbox_id, code), instance in zip(entries, image.instances):
            sandbox = self.register(
                Sandbox(sandbox_id, code, created_at=self.sim.now)
            )
            # Static bank partitioning, round-robin: instances may share
            # a bank when the wrapper guarantees they never run
            # concurrently (§5).
            bank = self.device.banks[instance.slot % len(self.device.banks)]
            bank.owner_slot = instance.slot
            instance.dram_bank = bank.index
            sandbox.backend = FpgaBackend(instance=instance, image_name=image.name)
            sandbox.state = SandboxState.CREATED
            self._resident[sandbox_id] = sandbox
            created.append(sandbox)
        self.observe_verb("create_vector", began)
        return created

    def start(self, sandbox_id: str):
        """OCI ``start``: prepare the software sandbox for a resident
        kernel (Fig. 10c "Prep.-sandbox", skipped when already warm)."""
        sandbox = self.get(sandbox_id)
        sandbox.require_state(SandboxState.CREATED, SandboxState.RUNNING)
        began = self.sim.now
        backend: FpgaBackend = sandbox.backend
        if not backend.warmed:
            yield self.sim.timeout(self.device.costs.prep_sandbox_s)
            backend.warmed = True
        sandbox.state = SandboxState.RUNNING
        sandbox.started_at = self.sim.now
        self.observe_verb("start", began)
        return sandbox

    def kill(self, sandbox_id: str, signal: SignalNum = SignalNum.SIGTERM):
        """OCI ``kill``: stop feeding the kernel (state only)."""
        sandbox = yield from super().kill(sandbox_id, signal)
        return sandbox

    def delete(self, sandbox_id: str):
        """OCI ``delete``: **empty** — returns immediately after a state
        update; the fabric is reclaimed by the next ``create`` (§3.5)."""
        sandbox = self.get(sandbox_id)
        began = self.sim.now
        yield self.sim.timeout(0.0)
        sandbox.state = SandboxState.DELETED
        self.observe_verb("delete", began)
        # Intentionally NOT forgotten/erased: the kernel stays resident
        # until the next create replaces the image.
        return sandbox

    # -- invocation --------------------------------------------------------------------

    def invoke(self, sandbox_id: str, exec_time_s: Optional[float] = None):
        """Generator: run one request on a warm FPGA sandbox.

        ``exec_time_s`` overrides the kernel's fixed execution time for
        input-dependent workloads (GZip file size, AML entry count).
        """
        sandbox = self.get(sandbox_id)
        sandbox.require_state(SandboxState.RUNNING)
        began = self.sim.now
        backend: FpgaBackend = sandbox.backend
        if not self.device.has_kernel(backend.instance.kernel.name):
            raise SandboxStateError(
                f"kernel for {sandbox_id!r} is no longer resident"
            )
        yield self.sim.timeout(self.device.costs.warm_invoke_s)
        if exec_time_s is None:
            yield from self.device.invoke(backend.instance.kernel.name)
        else:
            self.device.pu.clock.mark_busy()
            yield self.sim.timeout(exec_time_s)
            self.device.pu.clock.mark_idle()
        self.observe_verb("invoke", began)
        return sandbox

    # -- failure handling ----------------------------------------------------------------

    def _drop_residents(self) -> None:
        for old in self._resident.values():
            if old.state is not SandboxState.DELETED:
                old.state = SandboxState.DELETED
            self.forget(old.sandbox_id)
        self._resident.clear()
        for bank in self.device.banks:
            bank.owner_slot = None

    def crash(self) -> None:
        """The device (or its PU) crashed: the loaded image and every
        resident sandbox are lost.  The fault injector calls this for
        FPGA PU-crash faults; recovery is a fresh ``create_vector``."""
        self._drop_residents()
        self.device.image = None
        self.device.dirty = False

    # -- cache queries -------------------------------------------------------------------

    def cached_sandbox_for(self, func_id: str) -> Optional[Sandbox]:
        """A resident, non-deleted sandbox of ``func_id``, if any —
        the cache hit that makes an FPGA warm start possible."""
        for sandbox in self._resident.values():
            if (
                sandbox.code.func_id == func_id
                and sandbox.state in (SandboxState.CREATED, SandboxState.RUNNING)
            ):
                return sandbox
        return None

    @property
    def resident_function_ids(self) -> list[str]:
        """func_ids of every kernel in the current image."""
        return sorted({s.code.func_id for s in self._resident.values()})
