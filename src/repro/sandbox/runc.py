"""``runc``: the container sandbox runtime for CPU and DPU (§5).

Implements the vectorized sandbox abstraction over containers (always
passing one-sized vectors, as the paper does) and adds **cfork** — the
first container-level fork (§4.2):

* *baseline cold start*: create a container, boot the language runtime,
  import dependencies;
* *naive cfork*: create a function container, fork the template's
  runtime into it, re-attach cgroups/namespaces;
* *+FuncContainer*: take a pre-initialised function container from a
  pool instead of creating one inline;
* *+cpuset opt*: the kernel patch making the cgroup attach ~4x cheaper
  (configured on the :class:`OsInstance` via ``CpusetLockMode``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import config
from repro.errors import SandboxError
from repro.multios.cgroup import Cgroup
from repro.multios.os import OsInstance
from repro.multios.process import OsProcess
from repro.sandbox.base import (
    FunctionCode,
    Language,
    Sandbox,
    SandboxRuntime,
    SandboxState,
    SignalNum,
)
from repro.sandbox.template import TemplateContainer, boot_template, runtime_init_ms


@dataclass
class ContainerBackend:
    """Backend data of one container sandbox."""

    cgroup: Cgroup
    process: Optional[OsProcess] = None
    #: Template this instance was forked from (None for cold boots).
    template: Optional[TemplateContainer] = None


@dataclass
class PreparedContainer:
    """A pre-initialised function container waiting for a cfork."""

    cgroup: Cgroup


class RuncRuntime(SandboxRuntime):
    """Container runtime on one general-purpose PU."""

    runtime_name = "runc"

    def __init__(self, sim, os_instance: OsInstance):
        super().__init__(sim)
        self.os = os_instance
        self.templates: list[TemplateContainer] = []
        self._pool: list[PreparedContainer] = []
        self._cgroup_seq = 0
        #: Metrics for reports and tests.
        self.cold_boots = 0
        self.cforks = 0

    @property
    def pu(self):
        """The PU this runtime manages."""
        return self.os.pu

    # -- helpers ------------------------------------------------------------------

    def _new_cgroup(self, label: str) -> Cgroup:
        self._cgroup_seq += 1
        return self.os.cgroups.create(f"{label}-{self._cgroup_seq}")

    def _scaled(self, cost_ms: float) -> float:
        return cost_ms * config.MS / self.pu.spec.speed

    # -- OCI scalar interface -----------------------------------------------------------

    def create(self, sandbox_id: str, code: FunctionCode):
        """OCI ``create``: cold-path container creation (runc create)."""
        if code.language is None:
            raise SandboxError(f"runc cannot host kernel function {code.func_id!r}")
        began = self.sim.now
        sandbox = self.register(
            Sandbox(sandbox_id, code, created_at=self.sim.now)
        )
        yield self.sim.timeout(self._scaled(config.STARTUP.container_create_ms))
        sandbox.backend = ContainerBackend(cgroup=self._new_cgroup(sandbox_id))
        sandbox.state = SandboxState.CREATED
        self.observe_verb("create", began)
        return sandbox

    def start(self, sandbox_id: str):
        """OCI ``start``: boot the language runtime and load the code.

        This is the baseline cold path: interpreter boot plus dependency
        imports, all scaled by the PU's speed.
        """
        sandbox = self.get(sandbox_id)
        sandbox.require_state(SandboxState.CREATED)
        began = self.sim.now
        code = sandbox.code
        yield self.sim.timeout(self._scaled(runtime_init_ms(code.language)))
        if code.import_ms:
            yield self.sim.timeout(self._scaled(code.import_ms))
        process = yield from self.os.spawn(f"fn-{code.func_id}")
        process.memory.allocate_private(config.MEMORY.baseline_private_mb)
        process.memory.map_segment(self.os.shared_libraries)
        sandbox.backend.process = process
        sandbox.backend.cgroup.members.add(process)
        sandbox.state = SandboxState.RUNNING
        sandbox.started_at = self.sim.now
        self.cold_boots += 1
        self.observe_verb("start", began)
        return sandbox

    def kill(self, sandbox_id: str, signal: SignalNum = SignalNum.SIGTERM):
        """OCI ``kill``: signal the container's init process."""
        sandbox = yield from super().kill(sandbox_id, signal)
        backend = sandbox.backend
        if backend and backend.process and backend.process.alive:
            backend.process.exit()
        return sandbox

    def delete(self, sandbox_id: str):
        """OCI ``delete``: tear the container down and free resources."""
        sandbox = self.get(sandbox_id)
        sandbox.require_state(
            SandboxState.CREATED, SandboxState.RUNNING, SandboxState.STOPPED
        )
        began = self.sim.now
        backend = sandbox.backend
        if backend and backend.process and backend.process.alive:
            backend.process.exit()
        yield self.sim.timeout(self._scaled(1.0))  # runc delete is cheap
        sandbox.state = SandboxState.DELETED
        self.forget(sandbox_id)
        self.observe_verb("delete", began)
        return sandbox

    # -- templates & cfork ---------------------------------------------------------------

    def ensure_template(
        self, language: Language, dedicated_to: Optional[FunctionCode] = None
    ):
        """Generator: return a matching template, booting one if needed."""
        wanted = dedicated_to.func_id if dedicated_to else None
        for template in self.templates:
            if template.language is language and template.dedicated_to == wanted:
                return template
        template = yield from boot_template(self.os, language, dedicated_to)
        self.templates.append(template)
        return template

    def template_for(self, code: FunctionCode) -> Optional[TemplateContainer]:
        """The best available template for ``code`` (dedicated wins)."""
        best = None
        for template in self.templates:
            if not template.covers(code):
                continue
            if template.skips_imports_for(code):
                return template
            best = best or template
        return best

    def prepare_containers(self, count: int = 1):
        """Generator: pre-initialise function containers into the pool
        (the "+FuncContainer" optimisation of Fig. 11a)."""
        for _ in range(count):
            yield self.sim.timeout(self._scaled(config.STARTUP.container_create_ms))
            self._pool.append(PreparedContainer(cgroup=self._new_cgroup("pool")))
        return len(self._pool)

    @property
    def pooled_containers(self) -> int:
        """Pre-initialised containers currently available."""
        return len(self._pool)

    def cfork(self, sandbox_id: str, code: FunctionCode):
        """Generator: start an instance by forking a template (§4.2).

        Steps: obtain a function container (pooled if available, else
        created inline — the "naive" path), fork the template's runtime
        through the forkable-runtime protocol, re-attach the child into
        the function container's cgroup/namespaces, and load the
        function's code into the child.
        """
        template = self.template_for(code)
        if template is None:
            raise SandboxError(
                f"no template container for {code.func_id!r} "
                f"({code.language}) on {self.os.name}"
            )
        began = self.sim.now
        sandbox = self.register(Sandbox(sandbox_id, code, created_at=self.sim.now))
        if self._pool:
            prepared = self._pool.pop(0)
            cgroup = prepared.cgroup
        else:
            yield self.sim.timeout(self._scaled(config.STARTUP.container_create_ms))
            cgroup = self._new_cgroup(sandbox_id)
        sandbox.backend = ContainerBackend(cgroup=cgroup, template=template)
        child = yield from template.runtime.fork(self.os)
        yield from self.os.cgroups.attach(child, cgroup)
        if not template.skips_imports_for(code) and code.import_ms:
            yield self.sim.timeout(self._scaled(code.import_ms))
        # Function-private heap written over the COW mapping.
        child.memory.allocate_private(config.MEMORY.molecule_private_mb)
        sandbox.backend.process = child
        sandbox.state = SandboxState.RUNNING
        sandbox.started_at = self.sim.now
        template.fork_count += 1
        self.cforks += 1
        self.observe_verb("cfork", began)
        return sandbox

    # -- failure handling ----------------------------------------------------------------

    def crash(self) -> None:
        """The PU crashed: every function container dies instantly.

        Templates and the prepared-container pool are deliberately kept —
        the platform restores infrastructure on reboot; what is lost is
        function state (warm instances and in-flight requests).  The
        fault injector calls this for general-purpose PU-crash faults.
        """
        for sandbox in list(self._sandboxes.values()):
            backend = sandbox.backend
            if backend and backend.process and backend.process.alive:
                backend.process.exit()
            sandbox.state = SandboxState.DELETED
            self.forget(sandbox.sandbox_id)

    def first_request_penalty(self) -> float:
        """Extra COW page-fault cost a forked instance pays on its first
        request (why Molecule's warm numbers trail the baseline's in a
        few Fig. 14b cases)."""
        return self._scaled(config.STARTUP.cow_fault_penalty_ms)
