"""Sandbox runtimes: OCI + vectorized abstraction, runc/runf/runG."""

from repro.sandbox.base import (
    FunctionCode,
    Language,
    Sandbox,
    SandboxRuntime,
    SandboxState,
    SignalNum,
)
from repro.sandbox.runc import ContainerBackend, RuncRuntime
from repro.sandbox.runf import FpgaBackend, RunfRuntime
from repro.sandbox.rung import GpuBackend, RungRuntime
from repro.sandbox.snapshot import Snapshot, SnapshotManager
from repro.sandbox.template import (
    ForkableRuntime,
    TemplateContainer,
    boot_template,
    runtime_init_ms,
)

__all__ = [
    "ContainerBackend",
    "ForkableRuntime",
    "FpgaBackend",
    "FunctionCode",
    "GpuBackend",
    "Language",
    "RuncRuntime",
    "RunfRuntime",
    "RungRuntime",
    "Sandbox",
    "SandboxRuntime",
    "SandboxState",
    "SignalNum",
    "Snapshot",
    "SnapshotManager",
    "TemplateContainer",
    "boot_template",
    "runtime_init_ms",
]
