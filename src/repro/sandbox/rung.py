"""``runG``: the vectorized sandbox runtime for GPU functions (§6.8).

The paper's generality study adds GPU support with three small pieces:
a vectorized sandbox runtime over the CUDA API (this module), an
XPU-Shim instance for the GPU (the generic virtual-shim mechanism), and
a CUDA-C++ programming model.  GPUs are naturally vectorized: one
wrapper process with Nvidia MPS hosts many kernels as contexts/streams,
so ``create_vector`` loads all modules under a single context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import SandboxError
from repro.hardware.pu import ProcessingUnit, PuKind
from repro.sandbox.base import (
    FunctionCode,
    Sandbox,
    SandboxRuntime,
    SandboxState,
)

#: CUDA cost model (not paper-calibrated — the GPU appears only in the
#: Table 5 generality study, with no published latencies).
CONTEXT_CREATE_S = 0.30
MODULE_LOAD_S = 0.15
STREAM_CREATE_S = 0.001
KERNEL_LAUNCH_S = 50e-6


@dataclass
class GpuBackend:
    """Backend data of one GPU sandbox."""

    module_name: str
    stream_id: Optional[int] = None


class RungRuntime(SandboxRuntime):
    """GPU sandbox runtime over one device (CUDA + MPS wrapper)."""

    runtime_name = "runG"

    def __init__(self, sim, pu: ProcessingUnit):
        super().__init__(sim)
        if pu.kind is not PuKind.GPU:
            raise SandboxError(f"PU {pu.name} is not a GPU")
        self.pu = pu
        #: The shared MPS wrapper context (created lazily, then reused).
        self.context_ready = False
        self._next_stream = 0

    def _ensure_context(self):
        if not self.context_ready:
            yield self.sim.timeout(CONTEXT_CREATE_S)
            self.context_ready = True

    # -- OCI interface ---------------------------------------------------------------

    def create(self, sandbox_id: str, code: FunctionCode):
        """OCI ``create``: load the kernel's CUDA module."""
        created = yield from self.create_vector([(sandbox_id, code)])
        return created[0]

    def create_vector(self, entries: Sequence[tuple[str, FunctionCode]]):
        """Vectorized ``create``: one context, many modules (MPS)."""
        if not entries:
            raise SandboxError("create_vector needs at least one sandbox")
        began = self.sim.now
        yield from self._ensure_context()
        created = []
        for sandbox_id, code in entries:
            if code.kernel is None:
                raise SandboxError(f"function {code.func_id!r} has no GPU kernel")
            sandbox = self.register(
                Sandbox(sandbox_id, code, created_at=self.sim.now)
            )
            yield self.sim.timeout(MODULE_LOAD_S)
            sandbox.backend = GpuBackend(module_name=code.kernel.name)
            sandbox.state = SandboxState.CREATED
            created.append(sandbox)
        self.observe_verb("create_vector", began)
        return created

    def start(self, sandbox_id: str):
        """OCI ``start``: create the instance's CUDA stream."""
        sandbox = self.get(sandbox_id)
        sandbox.require_state(SandboxState.CREATED)
        began = self.sim.now
        yield self.sim.timeout(STREAM_CREATE_S)
        sandbox.backend.stream_id = self._next_stream
        self._next_stream += 1
        sandbox.state = SandboxState.RUNNING
        sandbox.started_at = self.sim.now
        self.observe_verb("start", began)
        return sandbox

    def delete(self, sandbox_id: str):
        """OCI ``delete``: unload the module (cheap on GPUs)."""
        sandbox = self.get(sandbox_id)
        began = self.sim.now
        yield self.sim.timeout(STREAM_CREATE_S)
        sandbox.state = SandboxState.DELETED
        self.forget(sandbox_id)
        self.observe_verb("delete", began)
        return sandbox

    # -- failure handling ----------------------------------------------------------------

    def lose_context(self) -> None:
        """The GPU (or its MPS wrapper) crashed: the shared context and
        every stream die with it.  The fault injector calls this for
        GPU PU-crash faults; the next ``create_vector`` rebuilds the
        context from scratch."""
        self.context_ready = False
        for sandbox in list(self._sandboxes.values()):
            sandbox.state = SandboxState.DELETED
            self.forget(sandbox.sandbox_id)

    # -- invocation ----------------------------------------------------------------------

    def invoke(self, sandbox_id: str, exec_time_s: Optional[float] = None):
        """Generator: launch the kernel on the sandbox's stream."""
        sandbox = self.get(sandbox_id)
        sandbox.require_state(SandboxState.RUNNING)
        began = self.sim.now
        yield self.sim.timeout(KERNEL_LAUNCH_S)
        duration = exec_time_s if exec_time_s is not None else sandbox.code.kernel.exec_time_s
        self.pu.clock.mark_busy()
        yield self.sim.timeout(duration)
        self.pu.clock.mark_idle()
        self.observe_verb("invoke", began)
        return sandbox
