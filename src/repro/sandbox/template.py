"""Template containers and the forkable language runtime (§4.2).

A *template container* holds a pre-booted language runtime that new
function instances are cfork-ed from.  Molecule keeps one generic
template per language by default (e.g. one Python template for every
Python function) and can launch *dedicated* templates — with a hot
function's code and dependencies pre-imported — to cut cold latency
further.

The *forkable language runtime* solves the multi-thread fork problem:
Unix fork only propagates the forking thread, so the runtime merges all
threads into one, saves their contexts in memory, forks, and re-expands
afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import config
from repro.errors import SandboxError
from repro.multios.memory import SharedSegment
from repro.multios.os import OsInstance
from repro.multios.process import OsProcess
from repro.sandbox.base import FunctionCode, Language


#: Worker threads a language runtime runs besides the main thread
#: (GC/JIT/event-loop helpers) — what makes plain fork unsafe.
RUNTIME_WORKER_THREADS = 3


class ForkableRuntime:
    """A language runtime process that knows how to fork itself."""

    def __init__(self, process: OsProcess, language: Language):
        self.process = process
        self.language = language
        process.spawn_thread(RUNTIME_WORKER_THREADS)

    def fork(self, os_instance: OsInstance):
        """Generator: merge threads -> fork -> expand both sides.

        Returns the child :class:`OsProcess`, already multi-threaded.
        """
        if not self.process.alive:
            raise SandboxError("cannot fork a dead runtime")
        parked = self.process.merge_threads()
        child = yield from os_instance.fork(self.process)
        self.process.expand_threads()
        # The child re-creates the saved thread contexts as real threads.
        child.spawn_thread(parked)
        return child


def runtime_init_ms(language: Language) -> float:
    """Cold language-runtime boot cost on the reference CPU."""
    if language is Language.PYTHON:
        return config.STARTUP.runtime_init_python_ms
    return config.STARTUP.runtime_init_nodejs_ms


@dataclass
class TemplateContainer:
    """A pre-booted template new instances are forked from."""

    language: Language
    os_instance: OsInstance
    runtime: ForkableRuntime
    #: func_id whose code/deps are pre-imported, or None for a generic
    #: per-language template (§4.2).
    dedicated_to: Optional[str] = None
    #: Children forked so far (for memory accounting and reports).
    fork_count: int = 0

    def covers(self, code: FunctionCode) -> bool:
        """True if this template can fork instances of ``code``."""
        if code.language is not self.language:
            return False
        return self.dedicated_to is None or self.dedicated_to == code.func_id

    def skips_imports_for(self, code: FunctionCode) -> bool:
        """Dedicated templates pre-import the function's dependencies,
        so forked children skip ``import_ms`` entirely."""
        return self.dedicated_to == code.func_id


def boot_template(
    os_instance: OsInstance,
    language: Language,
    dedicated_to: Optional[FunctionCode] = None,
):
    """Generator: boot a template container on ``os_instance``.

    Pays the full cold path once (container create + runtime init +
    imports for a dedicated template); afterwards every cfork reuses it.
    """
    sim = os_instance.sim
    pu = os_instance.pu
    create_s = config.STARTUP.container_create_ms * config.MS / pu.spec.speed
    yield sim.timeout(create_s)
    init_ms = runtime_init_ms(language)
    if dedicated_to is not None:
        if dedicated_to.language is not language:
            raise SandboxError(
                f"template language {language} does not match "
                f"{dedicated_to.func_id!r}"
            )
        init_ms += dedicated_to.import_ms
    yield sim.timeout(init_ms * config.MS / pu.spec.speed)
    process = yield from os_instance.spawn(f"template-{language.value}")
    # Template pages: runtime image + preloaded state, later shared with
    # every forked child (Fig. 11b/c memory model).
    process.memory.allocate_private(
        config.MEMORY.template_shared_mb + config.MEMORY.template_extra_mb
    )
    process.memory.map_segment(os_instance.shared_libraries)
    runtime = ForkableRuntime(process, language)
    return TemplateContainer(
        language=language,
        os_instance=os_instance,
        runtime=runtime,
        dedicated_to=dedicated_to.func_id if dedicated_to else None,
    )
