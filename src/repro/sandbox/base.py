"""The sandbox abstraction: OCI interfaces and their vectorized
extension (§3.5, Table 3).

Every sandbox runtime (``runc`` for CPU/DPU containers, ``runf`` for
FPGA, ``runG`` for GPU) implements the same five OCI verbs — *state,
create, start, kill, delete* — plus the vectorized variants that let a
runtime create/start/kill/delete a whole vector of sandboxes at once.
The default vectorized implementations loop over the scalar verbs;
``runf`` overrides them to pack a vector into a single FPGA image.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.errors import SandboxError, SandboxStateError
from repro.hardware.fpga import KernelSpec
from repro.sim import Simulator


class SandboxState(enum.Enum):
    """Lifecycle states reported by the ``state`` verb."""

    CREATING = "creating"
    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"
    DELETED = "deleted"


class Language(enum.Enum):
    """Language runtimes supported for general-purpose PUs (§5: Python
    and Node.js cover ~90% of AWS functions)."""

    PYTHON = "python"
    NODEJS = "nodejs"


class SignalNum(enum.IntEnum):
    """Signals accepted by the ``kill`` verb."""

    SIGTERM = 15
    SIGKILL = 9


@dataclass(frozen=True)
class FunctionCode:
    """The deployable artifact of one serverless function.

    For CPU/DPU functions, ``language`` plus ``import_ms`` (dependency
    import work a dedicated template pre-loads) describe the cold path.
    For accelerator functions, ``kernel`` is the compiled FPGA/GPU
    kernel.
    """

    func_id: str
    language: Optional[Language] = None
    kernel: Optional[KernelSpec] = None
    #: Dependency import cost on the reference CPU, paid at cold boot
    #: and skipped when forking from a dedicated template (§4.2).
    import_ms: float = 0.0
    #: Cold-path data preparation (downloads etc.) no startup
    #: optimisation can remove.
    data_ms: float = 0.0
    #: Instance DRAM footprint (admission control + density experiment).
    memory_mb: float = 60.0

    def __post_init__(self):
        if self.language is None and self.kernel is None:
            raise SandboxError(
                f"function {self.func_id!r} needs a language or a kernel"
            )
        if self.import_ms < 0 or self.data_ms < 0 or self.memory_mb < 0:
            raise SandboxError(f"negative cost in function {self.func_id!r}")

    @property
    def is_accelerated(self) -> bool:
        """True for FPGA/GPU kernels."""
        return self.kernel is not None


@dataclass
class Sandbox:
    """One sandbox instance managed through the OCI verbs."""

    sandbox_id: str
    code: FunctionCode
    state: SandboxState = SandboxState.CREATING
    created_at: float = 0.0
    started_at: Optional[float] = None
    #: Runtime-specific attachment (container, FPGA slot, ...).
    backend: Any = None

    def require_state(self, *allowed: SandboxState) -> None:
        """Raise unless the sandbox is in one of ``allowed`` states."""
        if self.state not in allowed:
            raise SandboxStateError(
                f"sandbox {self.sandbox_id!r} is {self.state.value}, "
                f"expected one of {[s.value for s in allowed]}"
            )


class SandboxRuntime:
    """Base class for OCI-compatible sandbox runtimes."""

    #: Human-readable runtime name ("runc", "runf", "runG").
    runtime_name = "abstract"

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._sandboxes: dict[str, Sandbox] = {}
        #: Optional :class:`repro.obs.Observability` hub; when set, the
        #: runtime reports per-verb latencies through it.
        self.obs = None

    def observe_verb(self, verb: str, began_s: float) -> None:
        """Report one OCI verb's duration (``began_s`` is the sim time
        captured at the verb's entry)."""
        if self.obs is not None:
            self.obs.on_sandbox_verb(self.runtime_name, verb, self.sim.now - began_s)

    # -- OCI scalar interface -------------------------------------------------------

    def state(self, sandbox_id: str) -> SandboxState:
        """OCI ``state``: query one sandbox's lifecycle state."""
        return self.get(sandbox_id).state

    def create(self, sandbox_id: str, code: FunctionCode):
        """OCI ``create``: generator building the sandbox."""
        raise NotImplementedError

    def start(self, sandbox_id: str):
        """OCI ``start``: generator running a created sandbox."""
        raise NotImplementedError

    def kill(self, sandbox_id: str, signal: SignalNum = SignalNum.SIGTERM):
        """OCI ``kill``: generator signalling a created/running sandbox."""
        sandbox = self.get(sandbox_id)
        sandbox.require_state(SandboxState.CREATED, SandboxState.RUNNING)
        yield self.sim.timeout(0.0)
        sandbox.state = SandboxState.STOPPED
        return sandbox

    def delete(self, sandbox_id: str):
        """OCI ``delete``: generator removing a sandbox."""
        raise NotImplementedError

    # -- vectorized interface (Table 3, bottom half) -----------------------------------

    def state_vector(self, sandbox_ids: Sequence[str]) -> list[SandboxState]:
        """Query a vector of sandboxes at once."""
        return [self.state(sid) for sid in sandbox_ids]

    def create_vector(self, entries: Sequence[tuple[str, FunctionCode]]):
        """Create a vector of sandboxes; default is a scalar loop."""
        created = []
        for sandbox_id, code in entries:
            sandbox = yield from self.create(sandbox_id, code)
            created.append(sandbox)
        return created

    def start_vector(self, sandbox_ids: Sequence[str]):
        """Start a vector of sandboxes concurrently."""
        procs = [self.sim.spawn(self.start(sid)) for sid in sandbox_ids]
        results = yield self.sim.all_of(procs)
        return [results[p] for p in procs]

    def kill_vector(self, entries: Sequence[tuple[str, SignalNum]]):
        """Signal a vector of sandboxes."""
        killed = []
        for sandbox_id, signal in entries:
            sandbox = yield from self.kill(sandbox_id, signal)
            killed.append(sandbox)
        return killed

    def delete_vector(self, sandbox_ids: Sequence[str]):
        """Delete a vector of sandboxes."""
        deleted = []
        for sandbox_id in sandbox_ids:
            sandbox = yield from self.delete(sandbox_id)
            deleted.append(sandbox)
        return deleted

    # -- bookkeeping ---------------------------------------------------------------------

    def get(self, sandbox_id: str) -> Sandbox:
        """Sandbox by id (raises for unknown ids)."""
        try:
            return self._sandboxes[sandbox_id]
        except KeyError:
            raise SandboxError(
                f"{self.runtime_name}: unknown sandbox {sandbox_id!r}"
            ) from None

    def register(self, sandbox: Sandbox) -> Sandbox:
        """Track a new sandbox (rejects duplicate ids)."""
        if sandbox.sandbox_id in self._sandboxes:
            raise SandboxError(
                f"{self.runtime_name}: duplicate sandbox id {sandbox.sandbox_id!r}"
            )
        self._sandboxes[sandbox.sandbox_id] = sandbox
        return sandbox

    def forget(self, sandbox_id: str) -> None:
        """Drop a sandbox from the table."""
        self._sandboxes.pop(sandbox_id, None)

    def sandboxes(self, *states: SandboxState) -> list[Sandbox]:
        """All sandboxes, optionally filtered by state."""
        boxes = list(self._sandboxes.values())
        if states:
            boxes = [b for b in boxes if b.state in states]
        return boxes
