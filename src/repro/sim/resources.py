"""Shared-resource primitives built on the event kernel.

Three classic primitives, mirroring the SimPy vocabulary:

* :class:`Resource` -- a counted lock (e.g. CPU cores): processes
  ``request()`` a slot, and ``release()`` it when done.
* :class:`Store` -- a FIFO buffer of Python objects (e.g. a message
  queue): ``put`` and ``get`` events.
* :class:`Container` -- a quantity pool (e.g. bytes of device DRAM):
  ``put(amount)`` / ``get(amount)``.

All wait queues are strictly FIFO, which keeps simulations
deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator


class Request(Event):
    """Pending acquisition of one :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, sim: Simulator, resource: "Resource"):
        super().__init__(sim)
        self.resource = resource


class Resource:
    """A counted resource with ``capacity`` interchangeable slots."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._users: set[Request] = set()
        self._waiting: deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for a slot; the returned event succeeds once it is held."""
        req = Request(self.sim, self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot (idempotent for waiters)."""
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            # Cancelling a request that never got a slot.
            try:
                self._waiting.remove(request)
            except ValueError:
                pass

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            req = self._waiting.popleft()
            self._users.add(req)
            req.succeed()


class Store:
    """A FIFO buffer of items with optional bounded capacity."""

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Add ``item``; succeeds immediately unless the store is full.

        Uses the kernel's slab (``sim.event()``), so the zero-delay
        ``put -> get`` handoff — succeed the getter, succeed the put —
        recycles two pooled events through the current timestep's
        bucket without ever touching the heap.
        """
        event = self.sim.event()
        if len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
            self._serve_getters()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Take the oldest item; blocks (as an event) while empty."""
        event = self.sim.event()
        if self.items:
            event.succeed(self.items.popleft())
            self._serve_putters()
        else:
            self._getters.append(event)
        return event

    def _serve_getters(self) -> None:
        while self._getters and self.items:
            self._getters.popleft().succeed(self.items.popleft())
            self._serve_putters()

    def _serve_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            self.items.append(item)
            event.succeed()
            self._serve_getters()


class Container:
    """A pool holding a continuous amount (bytes, joules, ...)."""

    def __init__(self, sim: Simulator, capacity: float, init: float = 0.0):
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("initial level must lie within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self._level = init
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        """Current amount stored."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; waits while it would overflow capacity."""
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        event = self.sim.event()
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; waits while the level is insufficient."""
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        if amount > self.capacity:
            raise SimulationError("request exceeds container capacity")
        event = self.sim.event()
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed()
                    progressed = True
            if self._getters:
                event, amount = self._getters[0]
                if amount <= self._level:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed(amount)
                    progressed = True


class PreemptibleClock:
    """Tracks busy time of a shared unit; useful for utilisation stats.

    Marks nest: with overlapping activities, the unit counts as busy
    while *any* activity is in flight (depth > 0).
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._busy_since: Optional[float] = None
        self._depth = 0
        self.busy_time = 0.0

    def mark_busy(self) -> None:
        """One activity started; the unit is busy while depth > 0."""
        if self._depth == 0:
            self._busy_since = self.sim.now
        self._depth += 1

    def mark_idle(self) -> None:
        """One activity finished (no-op when nothing is in flight)."""
        if self._depth == 0:
            return
        self._depth -= 1
        if self._depth == 0 and self._busy_since is not None:
            self.busy_time += self.sim.now - self._busy_since
            self._busy_since = None

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of wall time busy over ``[since, now]``."""
        span = self.sim.now - since
        if span <= 0:
            return 0.0
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        return min(1.0, busy / span)
