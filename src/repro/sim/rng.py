"""Seeded randomness helpers.

All stochastic behaviour in the library flows through :class:`SeededRng`
so a single seed reproduces an entire experiment.  Distributions are
thin wrappers over :mod:`random` with clamping helpers that keep latency
samples physical (non-negative).
"""

from __future__ import annotations

import random
import zlib
from typing import Sequence, TypeVar

T = TypeVar("T")


class SeededRng:
    """A named, seeded random stream."""

    def __init__(self, seed: int = 42):
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, name: str) -> "SeededRng":
        """Derive an independent, reproducible child stream.

        Children are keyed by ``name`` so adding a new consumer does not
        perturb the draws seen by existing ones.  The derivation uses a
        stable hash (not the builtin ``hash``, which is randomized per
        process) so one seed reproduces an experiment across processes.
        """
        child_seed = zlib.crc32(f"{self.seed}:{name}".encode()) & 0x7FFFFFFF
        return SeededRng(child_seed)

    def uniform(self, low: float, high: float) -> float:
        """Uniform sample in ``[low, high]``."""
        return self._random.uniform(low, high)

    def exponential(self, mean: float) -> float:
        """Exponential sample with the given mean."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return self._random.expovariate(1.0 / mean)

    def normal(self, mean: float, stddev: float) -> float:
        """Gaussian sample."""
        return self._random.gauss(mean, stddev)

    def jitter(self, value: float, fraction: float = 0.05) -> float:
        """``value`` perturbed by a clamped Gaussian of ``fraction`` CV.

        Used to add realistic measurement noise to calibrated latencies
        without ever producing a negative duration.
        """
        if value <= 0:
            return value
        sample = self.normal(value, value * fraction)
        return max(sample, value * 0.5)

    def choice(self, items: Sequence[T]) -> T:
        """Pick one item uniformly."""
        return self._random.choice(items)

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(items)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)
