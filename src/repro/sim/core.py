"""Deterministic discrete-event simulation kernel.

This is a small, from-scratch engine in the style of SimPy: simulated
activities are Python generators that ``yield`` :class:`Event` objects
and are resumed when those events trigger.  The kernel is deterministic:
events scheduled for the same timestamp are processed in (priority,
insertion-order) order, so a seeded run always produces the same trace.

The dispatch path is tuned for wall-clock throughput (this kernel is
the hard ceiling on how much traffic the reproduction can replay):

* process resumption for already-processed targets, bootstrap and
  interrupts enqueues a pooled :class:`_Resume` record directly instead
  of allocating an intermediate wakeup :class:`Event`;
* :meth:`Process.interrupt` tombstones its callback slot in O(1)
  instead of an O(n) ``list.remove`` — which also closes a race where
  a same-timestep trigger could resume an interrupted process;
* :meth:`Simulator.run` inlines the pop-dispatch loop with hot
  attributes hoisted into locals;
* :class:`Timeout` events are recycled through a free-list once the
  kernel can prove no outside reference survives.

None of this changes the (time, priority, seq) ordering contract: a
seeded run produces a byte-identical trace with or without the fast
paths.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(1.5)
...     return sim.now
>>> proc = sim.spawn(hello(sim))
>>> sim.run()
>>> proc.value
1.5
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

try:  # CPython: exact reference counts gate the Timeout free-list.
    from sys import getrefcount as _getrefcount
except ImportError:  # pragma: no cover - PyPy et al: disable recycling
    def _getrefcount(obj: object) -> int:
        return 1 << 30

from repro.errors import Interrupt, SimulationError

#: Scheduling priorities: URGENT callbacks run before NORMAL ones that
#: share a timestamp.  Used internally to make process resumption
#: deterministic; user code rarely needs anything but NORMAL.
URGENT = 0
NORMAL = 1

_PENDING = 0
_TRIGGERED = 1
_PROCESSED = 2

#: A popped queue entry's event is referenced only by the dispatch
#: local and ``getrefcount``'s argument when nothing else holds it.
_POOL_REFS = 2


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*, becomes *triggered* once :meth:`succeed`
    or :meth:`fail` is called (which schedules it on the event queue),
    and is *processed* once the simulator has run its callbacks.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callables invoked with this event when it is processed.
        #: Slots may be tombstoned to ``None`` by an interrupt; the
        #: dispatch loop skips them.
        self.callbacks: list[Optional[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is queued for processing."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._state == _PENDING:
            raise SimulationError("event value is not available before trigger")
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        self.sim._enqueue(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into every process waiting on the event.
        If nothing waits on a failed event, the simulator re-raises the
        exception from :meth:`Simulator.run` (fail-loud by default); call
        :meth:`defuse` to opt out.
        """
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        self.sim._enqueue(self, delay=0.0, priority=priority)
        return self

    def defuse(self) -> "Event":
        """Mark a failure as handled so it will not escape ``run()``."""
        self._defused = True
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay.

    Timeouts are the kernel's highest-churn allocation; finished ones
    with no surviving outside reference are recycled through
    :attr:`Simulator._timeout_pool` (see :meth:`Simulator.timeout`).
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Field init is flattened (no super() chain): timeouts are the
        # highest-volume allocation, born already triggered.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        self._defused = False
        self.delay = delay
        sim._seq += 1
        heapq.heappush(sim._queue, (sim._now + delay, NORMAL, sim._seq, self))


class _Resume:
    """A pooled direct-resume record on the event queue.

    Waking a process whose target already finished used to allocate a
    whole intermediate wakeup :class:`Event`; a ``_Resume`` carries just
    (process, ok, value) and is recycled after dispatch.  Records keep
    the URGENT-priority self-enqueue of the old wakeup events, so the
    (time, priority, seq) ordering is unchanged.
    """

    __slots__ = ("process", "ok", "value")


class Process(Event):
    """A running generator; also an event that triggers on completion.

    The wrapped generator yields :class:`Event` instances.  When a
    yielded event succeeds, the generator is resumed with the event's
    value; when it fails, the exception is thrown into the generator.
    The process event itself succeeds with the generator's return value,
    or fails with its unhandled exception.
    """

    __slots__ = ("generator", "_target", "_target_slot", "_resume_cb", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on, and the index
        #: of our callback in its callback list (for O(1) interrupt).
        self._target: Optional[Event] = None
        self._target_slot = -1
        #: The one bound-method object registered as a callback.  Cached
        #: so registration allocates nothing and so ``interrupt`` can
        #: tombstone by identity (``self._resume`` would build a fresh
        #: bound method on every attribute access and never match).
        self._resume_cb = self._resume
        # Bootstrap: resume the generator at the current time.
        sim._enqueue_resume(self, True, None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible.

        The process stops waiting on its current target (the target
        event remains valid and may trigger later without effect on this
        process).  The registered callback slot is tombstoned rather
        than removed, which is O(1) and — because the dispatch loop
        re-reads slots at call time — also suppresses the stale resume
        when the target triggers in the same timestep as the interrupt.
        Interrupting a finished process is an error.
        """
        if self._state != _PENDING:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        target = self._target
        if target is not None:
            callbacks = target.callbacks
            slot = self._target_slot
            if 0 <= slot < len(callbacks) and callbacks[slot] is self._resume_cb:
                callbacks[slot] = None
            self._target = None
        self.sim._enqueue_resume(self, False, Interrupt(cause))

    def _resume(self, trigger: Event) -> None:
        """Callback form of resumption, invoked by the dispatch loop."""
        if trigger._ok:
            self._do_resume(True, trigger._value)
        else:
            trigger._defused = True
            self._do_resume(False, trigger._value)

    def _do_resume(self, ok: bool, value: Any) -> None:
        self._target = None
        generator = self.generator
        try:
            if ok:
                event = generator.send(value)
            else:
                event = generator.throw(value)
        except StopIteration as stop:
            self._finish(True, stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self._finish(False, exc)
            return
        if not isinstance(event, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded {event!r}, expected an Event"
            )
            try:
                generator.throw(exc)
            except StopIteration as stop:
                self._finish(True, stop.value)
            except BaseException as err:  # noqa: BLE001
                self._finish(False, err)
            return
        if event._state == _PROCESSED:
            # Already-processed targets resume us directly (next step)
            # via an URGENT self-enqueue — no intermediate wakeup Event.
            self.sim._enqueue_resume(self, event._ok, event._value)
        else:
            self._target = event
            callbacks = event.callbacks
            self._target_slot = len(callbacks)
            callbacks.append(self._resume_cb)

    def _finish(self, ok: bool, value: Any) -> None:
        if self._state != _PENDING:  # pragma: no cover - defensive
            return
        self._ok = ok
        self._value = value
        self._state = _TRIGGERED
        self.sim._enqueue(self, delay=0.0, priority=NORMAL)


class Condition(Event):
    """Base for composite events over a fixed set of child events."""

    __slots__ = ("events", "_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        self._done = 0
        if not self.events:
            self.succeed({})
            return
        on_child = self._on_child  # one bound method for every child
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events of two simulators")
            if event._state == _PROCESSED:
                on_child(event)
            else:
                event.callbacks.append(on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _values(self) -> dict[Event, Any]:
        return {
            ev: ev._value
            for ev in self.events
            if ev._state == _PROCESSED and ev._ok
        }


class AllOf(Condition):
    """Succeeds when every child succeeded; fails on first child failure."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._state != _PENDING:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self.events):
            # Every child is processed-and-ok here by construction, so
            # skip the generic per-child state filtering.
            self.succeed({ev: ev._value for ev in self.events})


class AnyOf(Condition):
    """Succeeds when the first child succeeds; fails on first failure."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._state != _PENDING:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._values())


class Simulator:
    """The event loop: a clock plus a priority queue of triggered events."""

    #: Upper bound on recycled Timeout objects kept around.
    _TIMEOUT_POOL_MAX = 512

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, int, int, object]] = []
        self._seq = 0
        #: Number of events processed so far (diagnostic).
        self.processed_count = 0
        #: Free-lists: finished Timeout events safe to reuse, and
        #: dispatched _Resume records.
        self._timeout_pool: list[Timeout] = []
        self._resume_pool: list[_Resume] = []

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    # -- event construction -------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now.

        Recycles a pooled :class:`Timeout` when one is available; the
        pool only ever holds timeouts the dispatch loop proved
        unreferenced, so reuse is invisible to simulation code.
        """
        pool = self._timeout_pool
        if not pool:
            return Timeout(self, delay, value)
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        timeout = pool.pop()
        timeout.delay = delay
        timeout._value = value
        timeout._ok = True
        timeout._state = _TRIGGERED
        timeout._defused = False
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, NORMAL, self._seq, timeout))
        return timeout

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    # Alias matching SimPy's vocabulary.
    process = spawn

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that succeeds when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that succeeds when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def _enqueue_resume(self, process: Process, ok: bool, value: Any) -> None:
        """Schedule a direct URGENT resumption of ``process`` at now."""
        pool = self._resume_pool
        record = pool.pop() if pool else _Resume()
        record.process = process
        record.ok = ok
        record.value = value
        self._seq += 1
        heapq.heappush(self._queue, (self._now, URGENT, self._seq, record))

    def _dispatch(self, event: object) -> None:
        """Process one popped queue item (Event or _Resume record)."""
        self.processed_count += 1
        if type(event) is _Resume:
            process, ok, value = event.process, event.ok, event.value
            event.process = event.value = None
            self._resume_pool.append(event)
            process._do_resume(ok, value)
            return
        callbacks = event.callbacks
        event._state = _PROCESSED
        for callback in callbacks:
            if callback is not None:
                callback(event)
        callbacks.clear()
        if not event._ok:
            if not event._defused:
                raise event.value
        elif (
            type(event) is Timeout
            and len(self._timeout_pool) < self._TIMEOUT_POOL_MAX
            and _getrefcount(event) <= _POOL_REFS + 1  # +1: our parameter
        ):
            self._timeout_pool.append(event)

    def step(self) -> None:
        """Process the single next event."""
        _when, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = _when
        self._dispatch(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if no event lands on it.

        This is the kernel's hot loop: the pop-dispatch sequence is
        inlined with attributes hoisted into locals, equivalent to
        calling :meth:`step` until the queue drains.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"cannot run until {until} < now {self._now}")
        # ``inf`` means "no bound": one float compare per iteration
        # instead of a None test plus a compare.
        bound = float("inf") if until is None else until
        queue = self._queue
        pop = heapq.heappop
        resume_cls = _Resume
        timeout_cls = Timeout
        resume_pool = self._resume_pool
        timeout_pool = self._timeout_pool
        pool_max = self._TIMEOUT_POOL_MAX
        refcount = _getrefcount
        processed = self.processed_count
        try:
            while queue:
                if queue[0][0] > bound:
                    break
                when, _priority, _seq, event = pop(queue)
                self._now = when
                processed += 1
                if type(event) is resume_cls:
                    process, ok, value = event.process, event.ok, event.value
                    event.process = event.value = None
                    resume_pool.append(event)
                    process._do_resume(ok, value)
                    continue
                callbacks = event.callbacks
                event._state = _PROCESSED
                for callback in callbacks:
                    if callback is not None:
                        callback(event)
                callbacks.clear()
                if not event._ok:
                    if not event._defused:
                        raise event.value
                elif (
                    type(event) is timeout_cls
                    and len(timeout_pool) < pool_max
                    and refcount(event) <= _POOL_REFS
                ):
                    timeout_pool.append(event)
        finally:
            self.processed_count = processed
        if until is not None:
            self._now = max(self._now, until)

    def peek(self) -> float:
        """Timestamp of the next event, or ``inf`` when the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")
