"""Deterministic discrete-event simulation kernel.

This is a small, from-scratch engine in the style of SimPy: simulated
activities are Python generators that ``yield`` :class:`Event` objects
and are resumed when those events trigger.  The kernel is deterministic:
events scheduled for the same timestamp are processed in (priority,
insertion-order) order, so a seeded run always produces the same trace.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(1.5)
...     return sim.now
>>> proc = sim.spawn(hello(sim))
>>> sim.run()
>>> proc.value
1.5
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import Interrupt, SimulationError

#: Scheduling priorities: URGENT callbacks run before NORMAL ones that
#: share a timestamp.  Used internally to make process resumption
#: deterministic; user code rarely needs anything but NORMAL.
URGENT = 0
NORMAL = 1

_PENDING = 0
_TRIGGERED = 1
_PROCESSED = 2


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*, becomes *triggered* once :meth:`succeed`
    or :meth:`fail` is called (which schedules it on the event queue),
    and is *processed* once the simulator has run its callbacks.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callables invoked with this event when it is processed.
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is queued for processing."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._state == _PENDING:
            raise SimulationError("event value is not available before trigger")
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        self.sim._enqueue(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into every process waiting on the event.
        If nothing waits on a failed event, the simulator re-raises the
        exception from :meth:`Simulator.run` (fail-loud by default); call
        :meth:`defuse` to opt out.
        """
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        self.sim._enqueue(self, delay=0.0, priority=priority)
        return self

    def defuse(self) -> "Event":
        """Mark a failure as handled so it will not escape ``run()``."""
        self._defused = True
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        sim._enqueue(self, delay=delay, priority=NORMAL)


class Process(Event):
    """A running generator; also an event that triggers on completion.

    The wrapped generator yields :class:`Event` instances.  When a
    yielded event succeeds, the generator is resumed with the event's
    value; when it fails, the exception is thrown into the generator.
    The process event itself succeeds with the generator's return value,
    or fails with its unhandled exception.
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on.
        self._target: Optional[Event] = None
        # Bootstrap: resume the generator at the current time.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init.succeed(priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible.

        The process stops waiting on its current target (the target
        event remains valid and may trigger later without effect on this
        process).  Interrupting a finished process is an error.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self._target is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None
        wakeup = Event(self.sim)
        wakeup.callbacks.append(self._resume)
        wakeup.fail(Interrupt(cause), priority=URGENT)
        wakeup.defuse()

    def _resume(self, trigger: Event) -> None:
        self._target = None
        event: Any = None
        try:
            if trigger.ok:
                event = self.generator.send(trigger.value)
            else:
                trigger._defused = True
                event = self.generator.throw(trigger.value)
        except StopIteration as stop:
            self._finish(True, stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self._finish(False, exc)
            return
        if not isinstance(event, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded {event!r}, expected an Event"
            )
            try:
                self.generator.throw(exc)
            except StopIteration as stop:
                self._finish(True, stop.value)
            except BaseException as err:  # noqa: BLE001
                self._finish(False, err)
            return
        if event.processed:
            # Already-processed events resume us immediately (next step).
            wakeup = Event(self.sim)
            wakeup.callbacks.append(self._resume)
            if event.ok:
                wakeup.succeed(event.value, priority=URGENT)
            else:
                wakeup.fail(event.value, priority=URGENT)
                wakeup.defuse()
        else:
            self._target = event
            event.callbacks.append(self._resume)

    def _finish(self, ok: bool, value: Any) -> None:
        if self._state != _PENDING:  # pragma: no cover - defensive
            return
        self._ok = ok
        self._value = value
        self._state = _TRIGGERED
        self.sim._enqueue(self, delay=0.0, priority=NORMAL)


class Condition(Event):
    """Base for composite events over a fixed set of child events."""

    __slots__ = ("events", "_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        self._done = 0
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events of two simulators")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _values(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}


class AllOf(Condition):
    """Succeeds when every child succeeded; fails on first child failure."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event._defused = True
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed(self._values())


class AnyOf(Condition):
    """Succeeds when the first child succeeds; fails on first failure."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event._defused = True
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            return
        self.succeed(self._values())


class Simulator:
    """The event loop: a clock plus a priority queue of triggered events."""

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        #: Number of events processed so far (diagnostic).
        self.processed_count = 0

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    # -- event construction -------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    # Alias matching SimPy's vocabulary.
    process = spawn

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that succeeds when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that succeeds when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def step(self) -> None:
        """Process the single next event."""
        when, _priority, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - guarded by _enqueue
            raise SimulationError("time went backwards")
        self._now = when
        callbacks, event.callbacks = event.callbacks, []
        event._state = _PROCESSED
        self.processed_count += 1
        for callback in callbacks:
            callback(event)
        if not event.ok and not event._defused:
            raise event.value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if no event lands on it.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"cannot run until {until} < now {self._now}")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)

    def peek(self) -> float:
        """Timestamp of the next event, or ``inf`` when the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")
