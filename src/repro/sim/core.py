"""Deterministic discrete-event simulation kernel.

This is a small, from-scratch engine in the style of SimPy: simulated
activities are Python generators that ``yield`` :class:`Event` objects
and are resumed when those events trigger.  The kernel is deterministic:
events scheduled for the same timestamp are processed in (priority,
insertion-order) order, so a seeded run always produces the same trace.

The dispatch path is tuned for wall-clock throughput (this kernel is
the hard ceiling on how much traffic the reproduction can replay).  The
scheduler is a **two-level ready queue** drained in **timestep
batches**:

* the heap holds one bare float per *distinct pending timestamp* (float
  comparisons are the cheapest heap ops possible); the bucket map keys
  each timestamp to the scheduled event itself while the timestep has
  exactly one (the overwhelmingly common case for timers), promoting to
  a deque only when a second event lands on the same timestamp.
  Scheduling onto an already-pending timestep — the common case for
  zero-delay wakeups, FIFO handoffs and fan-in/fan-out storms — never
  touches the heap;
* URGENT events are only ever scheduled *at the current instant* (the
  kernel's own resumptions, interrupts and condition triggers), so they
  live in one global deque and never touch the heap or the bucket map
  at all;
* :meth:`Simulator.run` drains a whole timestep per heap pop: every
  same-timestamp event dispatches in (priority, seq) order straight out
  of the lanes, including events enqueued *during* the batch (URGENT
  arrivals preempt the remaining NORMAL backlog exactly as the old
  per-event heap did; zero-delay NORMAL arrivals append to the
  timestep's bucket — or, for singleton timesteps, to a persistent
  scratch deque — with a bare append);
* event records are **slab-allocated**: finished :class:`Timeout` and
  plain :class:`Event` objects with no surviving outside reference are
  recycled through free-lists, as are the pooled :class:`_Resume`
  records and the bucket lane structures themselves;
* process resumption for already-processed targets, bootstrap and
  interrupts enqueues a pooled :class:`_Resume` record directly instead
  of allocating an intermediate wakeup :class:`Event`;
* :meth:`Process.interrupt` tombstones its callback slot in O(1).

None of this changes the (time, priority, seq) ordering contract: a
seeded run produces a byte-identical trace with or without batching.
The pre-batch per-event heap loop is kept available as an ordering
oracle under ``Simulator(batched=False)``; the property suite replays
random schedule/cancel/interrupt interleavings through both and
asserts identical dispatch order.

Lightweight profiling counters (events dispatched per kind, batch-size
histogram, heap ops avoided, slab hit rates) accumulate as the kernel
runs and snapshot through :meth:`Simulator.kernel_profile`; ``repro
perf --profile`` emits them next to BENCH_perf.json.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(1.5)
...     return sim.now
>>> proc = sim.spawn(hello(sim))
>>> sim.run()
>>> proc.value
1.5
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

try:  # CPython: exact reference counts gate the free-lists.
    from sys import getrefcount as _getrefcount
except ImportError:  # pragma: no cover - PyPy et al: disable recycling
    def _getrefcount(obj: object) -> int:
        return 1 << 30

from repro.errors import Interrupt, SimulationError

#: Scheduling priorities: URGENT callbacks run before NORMAL ones that
#: share a timestamp.  Used internally to make process resumption
#: deterministic; user code rarely needs anything but NORMAL.
URGENT = 0
NORMAL = 1

_PENDING = 0
_TRIGGERED = 1
_PROCESSED = 2

#: A drained bucket slot's event is referenced only by the dispatch
#: local and ``getrefcount``'s argument when nothing else holds it.
_POOL_REFS = 2

#: Batch-size histogram buckets: index ``size.bit_length()`` capped at
#: ``_HIST_SLOTS - 1``, i.e. 1, 2-3, 4-7, ... with one overflow slot.
_HIST_SLOTS = 17

# A bucket-map entry is a single NORMAL event, or a bare deque of them
# once the timestamp collides.  Deques are consumed from the left, so
# an exception escaping ``run()`` (a failed, undefused event) leaves
# the timestep resumable: a collided bucket keeps its undrained tail
# and its heap entry until fully drained.


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*, becomes *triggered* once :meth:`succeed`
    or :meth:`fail` is called (which schedules it on the event queue),
    and is *processed* once the simulator has run its callbacks.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callables invoked with this event when it is processed.
        #: Slots may be tombstoned to ``None`` by an interrupt; the
        #: dispatch loop skips them.
        self.callbacks: list[Optional[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is queued for processing."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._state == _PENDING:
            raise SimulationError("event value is not available before trigger")
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        self.sim._enqueue(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into every process waiting on the event.
        If nothing waits on a failed event, the simulator re-raises the
        exception from :meth:`Simulator.run` (fail-loud by default); call
        :meth:`defuse` to opt out.
        """
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        self.sim._enqueue(self, delay=0.0, priority=priority)
        return self

    def defuse(self) -> "Event":
        """Mark a failure as handled so it will not escape ``run()``."""
        self._defused = True
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay.

    Timeouts are the kernel's highest-churn allocation; finished ones
    with no surviving outside reference are recycled through
    :attr:`Simulator._timeout_pool` (see :meth:`Simulator.timeout`).
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Field init is flattened (no super() chain): timeouts are the
        # highest-volume allocation, born already triggered.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        self._defused = False
        self.delay = delay
        if sim._batched:
            sim._insert(self, delay)
        else:
            sim._seq += 1
            heapq.heappush(sim._queue, (sim._now + delay, NORMAL, sim._seq, self))


class _Resume:
    """A pooled direct-resume record on the event queue.

    Waking a process whose target already finished used to allocate a
    whole intermediate wakeup :class:`Event`; a ``_Resume`` carries just
    (process, ok, value) and is recycled after dispatch.  Records keep
    the URGENT-priority self-enqueue of the old wakeup events, so the
    (time, priority, seq) ordering is unchanged.
    """

    __slots__ = ("process", "ok", "value")


class Process(Event):
    """A running generator; also an event that triggers on completion.

    The wrapped generator yields :class:`Event` instances.  When a
    yielded event succeeds, the generator is resumed with the event's
    value; when it fails, the exception is thrown into the generator.
    The process event itself succeeds with the generator's return value,
    or fails with its unhandled exception.
    """

    __slots__ = ("generator", "_target", "_target_slot", "_resume_cb", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on, and the index
        #: of our callback in its callback list (for O(1) interrupt).
        self._target: Optional[Event] = None
        self._target_slot = -1
        #: The one bound-method object registered as a callback.  Cached
        #: so registration allocates nothing and so ``interrupt`` can
        #: tombstone by identity (``self._resume`` would build a fresh
        #: bound method on every attribute access and never match).
        self._resume_cb = self._resume
        # Bootstrap: resume the generator at the current time.
        sim._enqueue_resume(self, True, None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible.

        The process stops waiting on its current target (the target
        event remains valid and may trigger later without effect on this
        process).  The registered callback slot is tombstoned rather
        than removed, which is O(1) and — because the dispatch loop
        re-reads slots at call time — also suppresses the stale resume
        when the target triggers in the same timestep as the interrupt.
        Interrupting a finished process is an error.
        """
        if self._state != _PENDING:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        target = self._target
        if target is not None:
            callbacks = target.callbacks
            slot = self._target_slot
            if 0 <= slot < len(callbacks) and callbacks[slot] is self._resume_cb:
                callbacks[slot] = None
            self._target = None
        self.sim._enqueue_resume(self, False, Interrupt(cause))

    def _resume(self, trigger: Event) -> None:
        """Callback form of resumption, invoked by the dispatch loop."""
        if trigger._ok:
            self._do_resume(True, trigger._value)
        else:
            trigger._defused = True
            self._do_resume(False, trigger._value)

    def _do_resume(self, ok: bool, value: Any) -> None:
        self._target = None
        generator = self.generator
        try:
            if ok:
                event = generator.send(value)
            else:
                event = generator.throw(value)
        except StopIteration as stop:
            self._finish(True, stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self._finish(False, exc)
            return
        if not isinstance(event, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded {event!r}, expected an Event"
            )
            try:
                generator.throw(exc)
            except StopIteration as stop:
                self._finish(True, stop.value)
            except BaseException as err:  # noqa: BLE001
                self._finish(False, err)
            return
        if event._state == _PROCESSED:
            # Already-processed targets resume us directly (next step)
            # via an URGENT self-enqueue — no intermediate wakeup Event.
            self.sim._enqueue_resume(self, event._ok, event._value)
        else:
            self._target = event
            callbacks = event.callbacks
            self._target_slot = len(callbacks)
            callbacks.append(self._resume_cb)

    def _finish(self, ok: bool, value: Any) -> None:
        if self._state != _PENDING:  # pragma: no cover - defensive
            return
        self._ok = ok
        self._value = value
        self._state = _TRIGGERED
        self.sim._enqueue(self, delay=0.0, priority=NORMAL)


class Condition(Event):
    """Base for composite events over a fixed set of child events."""

    __slots__ = ("events", "_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        self._done = 0
        if not self.events:
            self.succeed({})
            return
        on_child = self._on_child  # one bound method for every child
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events of two simulators")
            if event._state == _PROCESSED:
                on_child(event)
            else:
                event.callbacks.append(on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _values(self) -> dict[Event, Any]:
        return {
            ev: ev._value
            for ev in self.events
            if ev._state == _PROCESSED and ev._ok
        }


class AllOf(Condition):
    """Succeeds when every child succeeded; fails on first child failure."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._state != _PENDING:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self.events):
            # Every child is processed-and-ok here by construction, so
            # skip the generic per-child state filtering.
            self.succeed({ev: ev._value for ev in self.events})


class AnyOf(Condition):
    """Succeeds when the first child succeeds; fails on first failure."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._state != _PENDING:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._values())


class Simulator:
    """The event loop: a clock plus a two-level ready queue.

    ``batched=True`` (the default) runs the timestep-batched drain over
    the bucket map described in the module docstring.  ``batched=False``
    falls back to the pre-batch per-event heap loop — byte-identical
    ordering, roughly half the throughput — kept as the ordering oracle
    for the property suite and for A/B perf measurement.
    """

    #: Upper bounds on recycled records kept around per free-list.
    _TIMEOUT_POOL_MAX = 512
    _EVENT_POOL_MAX = 512
    _BUCKET_POOL_MAX = 256

    def __init__(self, batched: bool = True):
        self._now = 0.0
        self._batched = bool(batched)
        #: Batched mode: heap of bare floats, one per distinct pending
        #: timestamp.  Reference mode: heap of ``(time, priority, seq,
        #: event)`` tuples.
        self._queue: list = []
        #: timestamp -> the pending NORMAL event scheduled on it, or a
        #: deque of them once the timestamp collides.
        self._buckets: dict[float, Any] = {}
        #: URGENT events are only ever scheduled at the current instant,
        #: so one global FIFO covers every timestep; it preempts the
        #: draining bucket and never touches the heap.
        self._urgent: deque = deque()
        #: While ``run()`` drains a timestep, the deque receiving its
        #: zero-delay NORMAL enqueues with a bare append: the timestep's
        #: own bucket, or ``_scratch`` for singleton timesteps.
        self._active_bucket: Optional[deque] = None
        #: Persistent overlay deque for singleton timesteps (retired
        #: from heap and bucket map before dispatch, so their zero-delay
        #: followers need a home that skips the heap).
        self._scratch: deque = deque()
        self._seq = 0
        #: Number of events processed so far (diagnostic).
        self.processed_count = 0
        #: Free-lists (the slab): finished Timeout/Event records proven
        #: unreferenced, dispatched _Resume records, drained buckets.
        self._timeout_pool: list[Timeout] = []
        self._resume_pool: list[_Resume] = []
        self._event_pool: list[Event] = []
        self._bucket_pool: list[deque] = []
        # -- profiling counters (see kernel_profile) ----------------------
        self._c_timeout_new = 0
        self._c_timeout_reused = 0
        self._c_resume_new = 0
        self._c_resume_reused = 0
        self._c_event_new = 0
        self._c_event_reused = 0
        self._c_bucket_new = 0
        self._c_bucket_reused = 0
        self._c_dispatch_resume = 0
        self._c_dispatch_timeout = 0
        self._c_dispatch_event = 0
        self._c_dispatch_other = 0
        #: Batch-size histogram: slot ``size.bit_length()`` (capped).
        self._batch_hist = [0] * _HIST_SLOTS

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def batched(self) -> bool:
        """True when the timestep-batched drain is active."""
        return self._batched

    # -- event construction -------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event.

        Recycles a slab :class:`Event` when one is available; the pool
        only ever holds events the dispatch loop proved unreferenced,
        so reuse is invisible to simulation code.
        """
        pool = self._event_pool
        if pool:
            self._c_event_reused += 1
            event = pool.pop()
            event._ok = True
            event._state = _PENDING
            event._defused = False
            return event
        self._c_event_new += 1
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now.

        Recycles a pooled :class:`Timeout` when one is available; the
        pool only ever holds timeouts the dispatch loop proved
        unreferenced, so reuse is invisible to simulation code.
        """
        pool = self._timeout_pool
        if not pool:
            self._c_timeout_new += 1
            return Timeout(self, delay, value)
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self._c_timeout_reused += 1
        timeout = pool.pop()
        timeout.delay = delay
        timeout._value = value
        timeout._state = _TRIGGERED
        timeout._defused = False
        if self._batched:
            # Inlined _insert: timeouts are the hottest insert path.
            if delay == 0.0:
                bucket = self._active_bucket
                if bucket is not None:
                    bucket.append(timeout)
                    return timeout
            when = self._now + delay
            buckets = self._buckets
            entry = buckets.get(when)
            if entry is None:
                buckets[when] = timeout
                heapq.heappush(self._queue, when)
            elif type(entry) is deque:
                entry.append(timeout)
            else:
                bpool = self._bucket_pool
                if bpool:
                    bucket = bpool.pop()
                    self._c_bucket_reused += 1
                else:
                    bucket = deque()
                    self._c_bucket_new += 1
                bucket.append(entry)
                bucket.append(timeout)
                buckets[when] = bucket
        else:
            self._seq += 1
            heapq.heappush(self._queue, (self._now + delay, NORMAL, self._seq, timeout))
        return timeout

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    # Alias matching SimPy's vocabulary.
    process = spawn

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that succeeds when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that succeeds when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _insert(self, event: Event, delay: float) -> None:
        """Batched-mode NORMAL-priority insert into the two-level queue."""
        if delay == 0.0:
            bucket = self._active_bucket
            if bucket is not None:
                bucket.append(event)
                return
        when = self._now + delay
        buckets = self._buckets
        entry = buckets.get(when)
        if entry is None:
            buckets[when] = event
            heapq.heappush(self._queue, when)
        elif type(entry) is deque:
            entry.append(event)
        else:
            # Second event on this timestamp: promote the singleton
            # entry to a bucket deque (append order == seq order).
            bpool = self._bucket_pool
            if bpool:
                bucket = bpool.pop()
                self._c_bucket_reused += 1
            else:
                bucket = deque()
                self._c_bucket_new += 1
            bucket.append(entry)
            bucket.append(event)
            buckets[when] = bucket

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        if self._batched:
            if priority == NORMAL:
                # Inlined zero-delay _insert: every internal trigger
                # (succeed/fail/_finish) schedules at the current
                # instant, so this is the generic-event hot path.
                if delay == 0.0:
                    bucket = self._active_bucket
                    if bucket is not None:
                        bucket.append(event)
                        return
                    when = self._now
                    buckets = self._buckets
                    entry = buckets.get(when)
                    if entry is None:
                        buckets[when] = event
                        heapq.heappush(self._queue, when)
                    elif type(entry) is deque:
                        entry.append(event)
                    else:
                        bpool = self._bucket_pool
                        if bpool:
                            bucket = bpool.pop()
                            self._c_bucket_reused += 1
                        else:
                            bucket = deque()
                            self._c_bucket_new += 1
                        bucket.append(entry)
                        bucket.append(event)
                        buckets[when] = bucket
                    return
                self._insert(event, delay)
                return
            if priority != URGENT:
                raise SimulationError(
                    "the batched kernel schedules URGENT and NORMAL "
                    f"priorities only, got {priority}"
                )
            # URGENT is only ever immediate (see module docstring); the
            # global lane keeps it off the heap entirely.
            if delay != 0.0:
                raise SimulationError(
                    f"URGENT events must be immediate, got delay {delay}"
                )
            self._urgent.append(event)
        else:
            self._seq += 1
            heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def _enqueue_resume(self, process: Process, ok: bool, value: Any) -> None:
        """Schedule a direct URGENT resumption of ``process`` at now."""
        pool = self._resume_pool
        if pool:
            self._c_resume_reused += 1
            record = pool.pop()
        else:
            self._c_resume_new += 1
            record = _Resume()
        record.process = process
        record.ok = ok
        record.value = value
        if self._batched:
            self._urgent.append(record)
        else:
            self._seq += 1
            heapq.heappush(self._queue, (self._now, URGENT, self._seq, record))

    def _dispatch(self, event: object) -> None:
        """Process one popped queue item (Event or _Resume record)."""
        self.processed_count += 1
        if type(event) is _Resume:
            self._c_dispatch_resume += 1
            process, ok, value = event.process, event.ok, event.value
            event.process = event.value = None
            self._resume_pool.append(event)
            process._do_resume(ok, value)
            return
        callbacks = event.callbacks
        event._state = _PROCESSED
        for callback in callbacks:
            if callback is not None:
                callback(event)
        callbacks.clear()
        if not event._ok:
            self._c_dispatch_other += 1
            if not event._defused:
                raise event.value
        elif type(event) is Timeout:
            self._c_dispatch_timeout += 1
            if (
                len(self._timeout_pool) < self._TIMEOUT_POOL_MAX
                and _getrefcount(event) <= _POOL_REFS + 1  # +1: our parameter
            ):
                self._timeout_pool.append(event)
        elif type(event) is Event:
            self._c_dispatch_event += 1
            if (
                len(self._event_pool) < self._EVENT_POOL_MAX
                and _getrefcount(event) <= _POOL_REFS + 1  # +1: our parameter
            ):
                event._value = None
                self._event_pool.append(event)
        else:
            self._c_dispatch_other += 1

    def step(self) -> None:
        """Process the single next event."""
        if not self._batched:
            _when, _priority, _seq, event = heapq.heappop(self._queue)
            self._now = _when
            self._dispatch(event)
            return
        urgent = self._urgent
        if urgent:
            # URGENT entries are always at the current instant and
            # precede everything else scheduled for it.
            self._dispatch(urgent.popleft())
            return
        when = self._queue[0]
        entry = self._buckets[when]
        self._now = when
        if type(entry) is deque:
            event = entry.popleft()
            if not entry:
                # Last entry: retire the timestep *before* dispatch, so
                # a same-time enqueue from the callbacks re-creates a
                # fresh heap entry in correct order.
                heapq.heappop(self._queue)
                del self._buckets[when]
                self._recycle_bucket(entry)
        else:
            heapq.heappop(self._queue)
            del self._buckets[when]
            event = entry
        self._dispatch(event)

    def _recycle_bucket(self, bucket: deque) -> None:
        if len(self._bucket_pool) < self._BUCKET_POOL_MAX:
            self._bucket_pool.append(bucket)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if no event lands on it.

        This is the kernel's hot loop: one heap pop retires a whole
        timestep — the global URGENT lane drains before the timestep's
        bucket, re-checked before every NORMAL dispatch so events
        enqueued mid-batch interleave exactly as the per-event heap
        would order them.
        """
        if not self._batched:
            return self._run_reference(until)
        if until is not None and until < self._now:
            raise SimulationError(f"cannot run until {until} < now {self._now}")
        # ``inf`` means "no bound": one float compare per iteration
        # instead of a None test plus a compare.
        bound = float("inf") if until is None else until
        queue = self._queue
        buckets = self._buckets
        urgent = self._urgent
        scratch = self._scratch
        pop = heapq.heappop
        resume_cls = _Resume
        timeout_cls = Timeout
        event_cls = Event
        resume_pool = self._resume_pool
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        t_pool_max = self._TIMEOUT_POOL_MAX
        e_pool_max = self._EVENT_POOL_MAX
        refcount = _getrefcount
        bucket_pool = self._bucket_pool
        b_pool_max = self._BUCKET_POOL_MAX
        hist = self._batch_hist
        processed = self.processed_count
        n_resume = n_timeout = n_event = n_other = 0
        #: Pure singleton timesteps (batch of exactly one event) are by
        #: far the most common batch size; they are tallied in a bare
        #: counter and folded into the histogram once at exit.
        n_single = 0
        #: The deque currently draining: a collided timestep's bucket,
        #: or ``scratch`` for singleton timesteps (None before the
        #: first advance); leftover URGENT work from an interrupted
        #: previous run drains first, at the clock's current position.
        bucket: Optional[deque] = None
        draining = False
        batch_start = processed
        try:
            while True:
                # URGENT preempts the remaining NORMAL backlog,
                # re-checked before every dispatch: identical to popping
                # (time, priority, seq) tuples.  Only the URGENT lane
                # can carry _Resume records, so the NORMAL arm skips
                # that type check.
                if urgent:
                    event = urgent.popleft()
                    processed += 1
                    if type(event) is resume_cls:
                        n_resume += 1
                        process, ok, value = (
                            event.process, event.ok, event.value
                        )
                        event.process = event.value = None
                        resume_pool.append(event)
                        process._do_resume(ok, value)
                        continue
                elif bucket:
                    event = bucket.popleft()
                    processed += 1
                else:
                    if draining:
                        # Timestep fully drained.  A collided timestep
                        # retires only now (only future times were
                        # pushed meanwhile, so the heap minimum is
                        # still its timestamp); ``scratch`` stays bound
                        # as the active bucket across consecutive
                        # singleton timesteps.
                        if bucket is not scratch:
                            pop(queue)
                            del buckets[self._now]
                            if len(bucket_pool) < b_pool_max:
                                bucket_pool.append(bucket)
                            bucket = None
                            self._active_bucket = None
                        size = processed - batch_start
                        if size == 1:
                            n_single += 1
                        else:
                            idx = size.bit_length()
                            hist[
                                idx if idx < _HIST_SLOTS else _HIST_SLOTS - 1
                            ] += 1
                        draining = False
                    if not queue:
                        break
                    when = queue[0]
                    if when > bound:
                        break
                    entry = buckets[when]
                    if type(entry) is deque:
                        # Collided timestep: drain in place, retire
                        # only once dry (free exception-resumability).
                        self._now = when
                        batch_start = processed
                        draining = True
                        bucket = entry
                        self._active_bucket = bucket
                        continue
                    # Tight loop over consecutive singleton timesteps —
                    # the dominant pattern for scattered timers.  Each
                    # is retired *before* dispatch (exactly the
                    # reference loop's pop-then-dispatch) with dispatch
                    # inlined; the loop hands back to the outer drain
                    # the moment a timestep grows followers (URGENT or
                    # zero-delay arrivals) or the next one is collided.
                    if bucket is None:
                        bucket = scratch
                        self._active_bucket = scratch
                    del buckets[when]
                    while True:
                        pop(queue)
                        self._now = when
                        processed += 1
                        event = entry
                        # Drop the alias: the refcount-gated free-lists
                        # must see only the ``event`` local.
                        entry = None
                        callbacks = event.callbacks
                        event._state = _PROCESSED
                        for callback in callbacks:
                            if callback is not None:
                                callback(event)
                        callbacks.clear()
                        if not event._ok:
                            n_other += 1
                            if not event._defused:
                                raise event.value
                        elif type(event) is timeout_cls:
                            n_timeout += 1
                            if (
                                len(timeout_pool) < t_pool_max
                                and refcount(event) <= _POOL_REFS
                            ):
                                timeout_pool.append(event)
                        elif type(event) is event_cls:
                            n_event += 1
                            if (
                                len(event_pool) < e_pool_max
                                and refcount(event) <= _POOL_REFS
                            ):
                                event._value = None
                                event_pool.append(event)
                        else:
                            n_other += 1
                        if urgent or scratch:
                            # The timestep grew followers mid-dispatch:
                            # finish it as a batch in the outer drain.
                            batch_start = processed - 1
                            draining = True
                            break
                        n_single += 1
                        if not queue:
                            break
                        when = queue[0]
                        if when > bound:
                            break
                        # One hash lookup retires the timestep; the
                        # rare collided successor is put back.
                        entry = buckets.pop(when)
                        if type(entry) is deque:
                            buckets[when] = entry
                            break
                    # Re-enter the outer drain; with ``draining`` unset
                    # its advance arm re-checks queue/bound and picks
                    # up a collided next timestep.
                    continue
                callbacks = event.callbacks
                event._state = _PROCESSED
                for callback in callbacks:
                    if callback is not None:
                        callback(event)
                callbacks.clear()
                if not event._ok:
                    n_other += 1
                    if not event._defused:
                        raise event.value
                elif type(event) is timeout_cls:
                    n_timeout += 1
                    if (
                        len(timeout_pool) < t_pool_max
                        and refcount(event) <= _POOL_REFS
                    ):
                        timeout_pool.append(event)
                elif type(event) is event_cls:
                    n_event += 1
                    if (
                        len(event_pool) < e_pool_max
                        and refcount(event) <= _POOL_REFS
                    ):
                        event._value = None
                        event_pool.append(event)
                else:
                    n_other += 1
        finally:
            # An exception escaping a callback leaves the timestep
            # resumable: a collided timestep keeps its heap entry and
            # its bucket's undrained tail; a singleton timestep's
            # zero-delay followers spill from scratch back into the
            # queue (their timestamp was already retired, and no other
            # bucket can exist at ``now`` while scratch is active).
            if scratch:
                buckets[self._now] = scratch
                heapq.heappush(queue, self._now)
                self._scratch = deque()
            self._active_bucket = None
            self.processed_count = processed
            hist[1] += n_single
            self._c_dispatch_resume += n_resume
            self._c_dispatch_timeout += n_timeout
            self._c_dispatch_event += n_event
            self._c_dispatch_other += n_other
        if until is not None:
            self._now = max(self._now, until)

    def _run_reference(self, until: Optional[float] = None) -> None:
        """The pre-batch per-event heap loop (ordering oracle).

        Byte-identical dispatch order to the batched drain; kept under
        ``Simulator(batched=False)`` for the determinism property suite
        and A/B measurement.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"cannot run until {until} < now {self._now}")
        bound = float("inf") if until is None else until
        queue = self._queue
        pop = heapq.heappop
        resume_cls = _Resume
        timeout_cls = Timeout
        resume_pool = self._resume_pool
        timeout_pool = self._timeout_pool
        pool_max = self._TIMEOUT_POOL_MAX
        refcount = _getrefcount
        processed = self.processed_count
        try:
            while queue:
                if queue[0][0] > bound:
                    break
                when, _priority, _seq, event = pop(queue)
                self._now = when
                processed += 1
                if type(event) is resume_cls:
                    process, ok, value = event.process, event.ok, event.value
                    event.process = event.value = None
                    resume_pool.append(event)
                    process._do_resume(ok, value)
                    continue
                callbacks = event.callbacks
                event._state = _PROCESSED
                for callback in callbacks:
                    if callback is not None:
                        callback(event)
                callbacks.clear()
                if not event._ok:
                    if not event._defused:
                        raise event.value
                elif (
                    type(event) is timeout_cls
                    and len(timeout_pool) < pool_max
                    and refcount(event) <= _POOL_REFS
                ):
                    timeout_pool.append(event)
        finally:
            self.processed_count = processed
        if until is not None:
            self._now = max(self._now, until)

    def peek(self) -> float:
        """Timestamp of the next event, or ``inf`` when the queue is empty."""
        if self._batched and self._urgent:
            # URGENT entries are always at the current instant.
            return self._now
        if not self._queue:
            return float("inf")
        # Bare float in batched mode, (when, ...) tuple in reference.
        head = self._queue[0]
        return head if self._batched else head[0]

    # -- profiling ----------------------------------------------------------

    def kernel_profile(self) -> dict:
        """Snapshot of the kernel's profiling counters.

        Cheap to call (reads counters, allocates one small dict tree);
        the counters themselves accumulate from construction, so two
        snapshots bracket a workload's delta.
        """
        hist = self._batch_hist
        batches = sum(hist)
        histogram: dict[str, int] = {}
        for idx in range(1, _HIST_SLOTS):
            count = hist[idx]
            if not count:
                continue
            lo = 1 << (idx - 1)
            hi = (1 << idx) - 1
            if idx == _HIST_SLOTS - 1:
                histogram[f"{lo}+"] = count
            elif lo == hi:
                histogram[str(lo)] = count
            else:
                histogram[f"{lo}-{hi}"] = count
        dispatched = {
            "resume": self._c_dispatch_resume,
            "timeout": self._c_dispatch_timeout,
            "event": self._c_dispatch_event,
            "other": self._c_dispatch_other,
        }
        total = self.processed_count

        def slab(new: int, reused: int) -> dict:
            uses = new + reused
            return {
                "new": new,
                "reused": reused,
                "hit_rate": reused / uses if uses else 0.0,
            }

        return {
            "batched": self._batched,
            "events_processed": total,
            "dispatched_by_kind": dispatched,
            "batches_drained": batches,
            "batch_size_hist": histogram,
            "mean_batch_size": total / batches if batches else 0.0,
            "heap_ops_avoided": max(0, total - batches),
            "slab": {
                "timeout": slab(self._c_timeout_new, self._c_timeout_reused),
                "resume": slab(self._c_resume_new, self._c_resume_reused),
                "event": slab(self._c_event_new, self._c_event_reused),
                "bucket": slab(self._c_bucket_new, self._c_bucket_reused),
            },
        }
