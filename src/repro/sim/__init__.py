"""Discrete-event simulation kernel (SimPy-style, from scratch)."""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Event,
    NORMAL,
    Process,
    Simulator,
    Timeout,
    URGENT,
)
from repro.sim.resources import Container, PreemptibleClock, Request, Resource, Store
from repro.sim.rng import SeededRng

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "NORMAL",
    "PreemptibleClock",
    "Process",
    "Request",
    "Resource",
    "SeededRng",
    "Simulator",
    "Store",
    "Timeout",
    "URGENT",
]
