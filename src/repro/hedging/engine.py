"""Tail-latency hedging by request cloning.

A hedged request runs as two racing *copies* of one attempt: the
primary is dispatched normally, and when it is still in flight once its
elapsed latency crosses the function's observed upper percentile (the
*trigger*), a clone is launched onto a second healthy PU distinct from
the primary's (anti-affinity).  The first copy to complete answers the
request; the loser is cancelled at its next checkpoint inside the
invoker, and any execution it already burned is charged to the billing
ledger as hedge waste.

The policy layer here owns the *decisions* and the *accounting*:

* :class:`HedgeConfig` — percentile, warm-up sample floor, trigger
  clamps;
* :class:`HedgePolicy` — eligibility (healthy distinct candidates,
  general-purpose path only), the per-function
  :class:`~repro.hedging.tracker.LatencyTracker` that feeds the
  percentile trigger, lifetime counters, and the per-hedge event log
  the golden hedge trace pins down;
* :class:`_HedgeState` — the shared first-wins join state of one
  hedged attempt (claim, loser detection, completion notification).

The race mechanics — copy spawning, cancellation checkpoints, loser
teardown — live in the invoker.  Like the warm-path engine, hedging is
fully optional: ``MoleculeRuntime(hedging=None)`` leaves every code
path and every metric family byte-identical to a runtime that never
heard of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import SchedulingError
from repro.hedging.tracker import LatencyTracker

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.molecule import MoleculeRuntime


@dataclass
class HedgeConfig:
    """Tuning knobs for the hedge policy."""

    #: Latency percentile that arms the trigger: a request still in
    #: flight past its function's observed q-th percentile is hedged.
    percentile: float = 95.0
    #: Completions a function must accumulate before its percentile is
    #: trusted; below the floor the fallback trigger (if any) applies.
    min_samples: int = 10
    #: Fixed trigger delay (seconds) used while a function is below
    #: ``min_samples``.  None disables hedging until the tracker warms —
    #: but the burst tails hedging exists for form *before* any tracker
    #: could warm (the first cold stampede), so the default fires a
    #: conservative 250 ms fallback from the first request.
    default_trigger_s: Optional[float] = 0.25
    #: Floor under the trigger delay: never hedge earlier than this,
    #: whatever the histogram says (sub-ms triggers would clone nearly
    #: every request).
    min_trigger_s: float = 0.002
    #: Global clone budget (repro.hedging.budget): tokens accrue at
    #: this ratio per answered request and every clone spends one, so
    #: lifetime ``fired <= budget_burst + budget_ratio * answered``
    #: whatever the latency distribution.  None disables rate limiting
    #: (the overload controller still installs a throttleable bucket
    #: for its brownout when needed).
    budget_ratio: Optional[float] = None
    #: Token-bucket depth: clones the budget may burst ahead of accrual.
    budget_burst: float = 4.0
    #: Refuse clones while hedge-wasted cost exceeds this fraction of
    #: the total bill so far (None: no waste ceiling).
    budget_waste_ceiling: Optional[float] = None
    #: Feed the hedger's per-PU win/waste history back into
    #: ``Scheduler.place()`` so chronically slow PUs are deprioritised
    #: for primaries, not just excluded for clones.  Off by default:
    #: reordering changes placement and therefore golden traces.
    pu_feedback: bool = False
    #: Hedged primaries a PU must have hosted before the feedback
    #: reordering trusts its loss rate.
    pu_feedback_min_samples: int = 8


class _HedgeState:
    """First-wins join state shared by the copies of one hedged attempt.

    The invoker's copy wrappers run in separate simulated processes;
    this object is how they agree on a winner.  ``claim`` is called
    synchronously at a copy's final checkpoint (no yields between the
    check and the claim), so exactly one copy ever wins.
    """

    __slots__ = (
        "function", "request_id", "trigger_s", "exclude", "pu_hint",
        "winner", "failures", "pending", "fired", "event", "policy",
        "trigger_event", "_waiter",
    )

    def __init__(self, function, request_id: int, trigger_s: float):
        self.function = function
        self.request_id = request_id
        #: Seconds of primary flight time before the clone launches.
        self.trigger_s = trigger_s
        #: The policy that opened this state (stamped by ``begin``); the
        #: invoker's checkpoints charge waste through it so a per-job
        #: speculation policy (repro.futures) is billed separately from
        #: the runtime-wide hedger.
        self.policy = None
        #: Externally fired clone trigger (repro.futures straggler
        #: gather): when set, the join loop waits on this event instead
        #: of the ``trigger_s`` timer.
        self.trigger_event = None
        #: The primary's PU at fire time: the clone never lands on it.
        self.exclude = None
        #: Best-known PU of a primary that has no placement yet (a
        #: parked coalesced follower inherits its batch's PU).
        self.pu_hint = None
        #: (tag, result, attempt_info) of the first completed copy.
        self.winner = None
        #: Errors of copies that failed outright (oldest first).
        self.failures: list = []
        #: Copies still in flight.
        self.pending = 0
        #: True once the clone actually launched.
        self.fired = False
        #: The policy's event-log record for this hedge (None until
        #: fired); mutated in place as the race resolves.
        self.event = None
        self._waiter = None

    def arm(self, sim):
        """Create the completion event the join loop waits on."""
        self._waiter = sim.event()
        return self._waiter

    def disarm(self) -> None:
        self._waiter = None

    def notify(self) -> None:
        """Wake the join loop after a copy completed, failed, or was
        cancelled."""
        if self._waiter is not None and not self._waiter.triggered:
            self._waiter.succeed()

    def claim(self, tag: str, result, attempt_info) -> bool:
        """Atomically claim the win for ``tag``; False if already won."""
        if self.winner is None:
            self.winner = (tag, result, attempt_info)
            return True
        return False

    def lost(self, tag: str) -> bool:
        """True once the *other* copy has won (this one must cancel)."""
        return self.winner is not None and self.winner[0] != tag


class HedgePolicy:
    """Decides when to hedge and accounts for what hedging cost."""

    def __init__(self, runtime: "MoleculeRuntime",
                 config: Optional[HedgeConfig] = None, wire: bool = True):
        self.runtime = runtime
        self.config = config or HedgeConfig()
        self.tracker = LatencyTracker()
        # Lifetime counters (also exported as repro_hedge_* metrics).
        self.fired = 0
        self.won = 0
        self.cancelled = 0
        self.skipped = 0
        self.throttled = 0
        self.losers_completed = 0
        self.wasted_s = 0.0
        self.wasted_cost = 0.0
        self.observed = 0
        #: One record per fired hedge, in fire order; mutated in place
        #: as each race resolves.  The golden hedge trace pins these.
        self.events: list[dict] = []
        #: Global clone token bucket (None: unbudgeted and, absent an
        #: overload controller, unthrottleable).
        self.budget = None
        if (self.config.budget_ratio is not None
                or self.config.budget_waste_ceiling is not None):
            from repro.hedging.budget import HedgeBudget

            self.budget = HedgeBudget(
                ratio=self.config.budget_ratio,
                burst=self.config.budget_burst,
                waste_ceiling=self.config.budget_waste_ceiling,
            )
        #: Per-PU primary history: name -> {primaries, lost, waste_s}.
        #: A "lost" primary is one whose clone answered first — the
        #: sign the PU was the slow side of the race.
        self.pu_stats: dict[str, dict] = {}
        if runtime.obs is not None:
            runtime.obs.ensure_hedge_metrics()
        # ``wire=False`` builds a free-standing policy (the fan-out
        # engine's straggler speculation) that must not become the
        # runtime-wide hedger: it is passed per request instead.
        if wire:
            runtime.invoker.hedging = self
            if self.config.pu_feedback:
                runtime.scheduler.hedge_feedback = self

    # -- trigger ---------------------------------------------------------------------

    def observe(self, func_name: str, latency_s: float) -> None:
        """Feed one successful completion into the latency tracker."""
        self.tracker.observe(func_name, latency_s)
        self.observed += 1
        if self.budget is not None:
            self.budget.on_answered()

    def trigger_delay(self, function) -> Optional[float]:
        """Seconds a request may fly before its clone launches, or
        None when this function cannot be hedged yet."""
        config = self.config
        if self.tracker.count(function.name) >= config.min_samples:
            delay = self.tracker.latency_percentile(
                function.name, config.percentile
            )
        else:
            delay = config.default_trigger_s
        if delay is None:
            return None
        return max(config.min_trigger_s, delay)

    def eligible(self, function, kind, resolved_kind, pu, force_cold) -> bool:
        """Whether this attempt should run hedged.

        Only the general-purpose path hedges (accelerated attempts have
        no cancellation checkpoints), only when the caller did not pin a
        PU, and only when at least two healthy PUs could host the
        function — otherwise the clone could never satisfy
        anti-affinity.
        """
        if pu is not None or force_cold:
            return False
        if not resolved_kind.general_purpose:
            return False
        if self.trigger_delay(function) is None:
            return False
        try:
            candidates = self.runtime.scheduler.candidates(function, kind)
        except SchedulingError:
            return False
        return len(candidates) >= 2

    # -- race lifecycle --------------------------------------------------------------

    def begin(self, function, request_id: int) -> _HedgeState:
        """Open the join state for one hedged attempt."""
        state = _HedgeState(function, request_id, self.trigger_delay(function))
        state.policy = self
        return state

    def fire(self, state: _HedgeState, function, kind, primary_pu) -> bool:
        """Decide whether the clone actually launches.

        ``primary_pu`` is the primary's PU at trigger time (or its
        batch's PU if it is still parked).  Unknown placement or no
        healthy distinct candidate means no clone — counted skipped.
        """
        candidates = ()
        if primary_pu is not None:
            try:
                candidates = self.runtime.scheduler.clone_candidates(
                    function, kind, exclude=primary_pu
                )
            except SchedulingError:
                candidates = ()
        if not candidates:
            self.skipped += 1
            return False
        if self.budget is not None:
            total_cost = (self.runtime.ledger.total_cost
                          if self.budget.waste_ceiling is not None else 0.0)
            if not self.budget.try_fire(self.wasted_cost, total_cost):
                self.skipped += 1
                self.throttled += 1
                if self.runtime.obs is not None:
                    self.runtime.obs.on_hedge_throttled(function.name)
                return False
        state.fired = True
        state.exclude = primary_pu
        state.pending += 1
        self.fired += 1
        self._pu_stat(primary_pu.name)["primaries"] += 1
        if self.runtime.obs is not None:
            self.runtime.obs.on_hedge_fired(function.name)
        state.event = {
            "request_id": state.request_id,
            "function": function.name,
            "primary_pu": primary_pu.name,
            "clone_pu": None,
            "winner": None,
            "wasted_ms": 0.0,
        }
        self.events.append(state.event)
        return True

    def on_won(self, state: _HedgeState, tag: str, result) -> None:
        """A copy claimed the win."""
        if state.event is not None:
            state.event["winner"] = tag
            if tag == "clone":
                state.event["clone_pu"] = result.pu_name
        if tag == "clone":
            self.won += 1
            if self.runtime.obs is not None:
                self.runtime.obs.on_hedge_won(state.function.name)
            if state.event is not None:
                self._pu_stat(state.event["primary_pu"])["lost"] += 1

    def on_cancelled(self, state: _HedgeState, tag: str, attempt_info,
                     wasted_s: float) -> None:
        """A losing copy was torn down (or died after the win)."""
        if tag == "clone":
            self.cancelled += 1
            if self.runtime.obs is not None:
                self.runtime.obs.on_hedge_cancelled(state.function.name)
            if state.event is not None and state.event["clone_pu"] is None:
                used = attempt_info.get("pu")
                if used is not None:
                    state.event["clone_pu"] = used.name
        if wasted_s > 0.0:
            self.wasted_s += wasted_s
            if self.runtime.obs is not None:
                self.runtime.obs.on_hedge_wasted(state.function.name, wasted_s)
            if state.event is not None:
                state.event["wasted_ms"] += round(wasted_s * 1000.0, 6)

    def on_loser_completed(self, state: _HedgeState, tag: str, result) -> None:
        """Defensive: a loser ran to completion without hitting a
        cancellation checkpoint (the general-purpose path always has
        one before responding, so this staying zero is itself a tested
        invariant)."""
        self.losers_completed += 1
        self.on_cancelled(state, tag, {}, result.exec_s)

    def charge_waste(self, request_id: int, function, pu, exec_s: float):
        """Bill the execution a cancelled loser already burned."""
        entry = self.runtime.ledger.charge(
            request_id, function.name, pu, exec_s, hedge_waste=True
        )
        self.wasted_cost += entry.cost
        self._pu_stat(pu.name)["waste_s"] += exec_s
        return entry

    # -- per-PU feedback (consulted by Scheduler.place) --------------------------------

    def _pu_stat(self, pu_name: str) -> dict:
        stat = self.pu_stats.get(pu_name)
        if stat is None:
            stat = {"primaries": 0, "lost": 0, "waste_s": 0.0}
            self.pu_stats[pu_name] = stat
        return stat

    def pu_penalty(self, pu_name: str) -> float:
        """Fraction of this PU's hedged primaries that lost their race
        to a clone (0.0 until the sample floor is met — a cold PU must
        not be punished on noise)."""
        stat = self.pu_stats.get(pu_name)
        if (stat is None
                or stat["primaries"] < self.config.pu_feedback_min_samples):
            return 0.0
        return stat["lost"] / stat["primaries"]

    def reorder_candidates(self, candidates):
        """Stable-reorder placement candidates by hedge-loss penalty:
        chronically slow PUs sink to the back of the primary order
        without being excluded (they still serve when the rest are
        full, unlike clone anti-affinity)."""
        if len(candidates) < 2:
            return candidates
        penalties = [self.pu_penalty(pu.name) for pu in candidates]
        first = penalties[0]
        if all(penalty == first for penalty in penalties):
            return candidates
        order = sorted(range(len(candidates)),
                       key=lambda i: (penalties[i], i))
        return tuple(candidates[i] for i in order)

    # -- reporting -------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Lifetime accounting (stable keys, deterministic values;
        budget keys appear only when a bucket is installed, keeping
        unbudgeted reports identical to earlier releases)."""
        snap = {
            "fired": self.fired,
            "won": self.won,
            "cancelled": self.cancelled,
            "skipped": self.skipped,
            "losers_completed": self.losers_completed,
            "wasted_s": round(self.wasted_s, 9),
            "wasted_cost": round(self.wasted_cost, 9),
            "observed": self.observed,
        }
        if self.budget is not None:
            snap["throttled"] = self.throttled
            snap["budget"] = self.budget.snapshot()
        return snap
