"""Per-function end-to-end latency tracking for the hedge policy.

The tracker is fed every successful invocation — the same way the
warm-path :class:`~repro.warmpath.predictor.ArrivalPredictor` is fed
every admission — and maintains a per-function latency histogram whose
upper percentile is the hedge trigger: a request still in flight past
its function's observed p95 (by default) is a straggler worth cloning.

Everything is pure arithmetic over observed durations: no randomness,
so a seeded run that feeds the same completions produces the same
triggers, request for request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Latency histogram bucket upper bounds (seconds), roughly logarithmic
#: from 1ms to 30s; latencies beyond the last bound land in an overflow
#: bucket.  Finer than the predictor's gap buckets at the low end
#: because warm-path latencies sit in single-digit milliseconds.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.0075, 0.01, 0.025, 0.05, 0.075, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


@dataclass
class LatencyStats:
    """Observed end-to-end latencies of one function."""

    #: Total completions observed.
    count: int = 0
    #: Latency histogram (len(LATENCY_BUCKETS) + 1 overflow).
    bucket_counts: list = field(
        default_factory=lambda: [0] * (len(LATENCY_BUCKETS) + 1)
    )


class LatencyTracker:
    """Per-function latency histogram with nearest-rank percentiles."""

    def __init__(self):
        self._stats: dict[str, LatencyStats] = {}

    def observe(self, func_name: str, latency_s: float) -> None:
        """Record one completed invocation of ``func_name``."""
        if latency_s < 0.0:
            return
        stats = self._stats.get(func_name)
        if stats is None:
            stats = self._stats[func_name] = LatencyStats()
        index = len(LATENCY_BUCKETS)
        for i, bound in enumerate(LATENCY_BUCKETS):
            if latency_s <= bound:
                index = i
                break
        stats.bucket_counts[index] += 1
        stats.count += 1

    def functions(self) -> list[str]:
        """Every function the tracker has seen, in first-seen order."""
        return list(self._stats)

    def count(self, func_name: str) -> int:
        """Completions observed for one function (0 if never seen)."""
        stats = self._stats.get(func_name)
        return 0 if stats is None else stats.count

    def latency_percentile(self, func_name: str, q: float) -> Optional[float]:
        """Nearest-rank ``q``-th percentile latency (seconds).

        Returns the upper bound of the bucket containing the rank (the
        conservative choice for a hedge trigger: firing *later* than
        the true percentile wastes fewer clones); None until at least
        one completion has been observed.  Latencies beyond the largest
        bucket report that largest bound.
        """
        stats = self._stats.get(func_name)
        if stats is None or stats.count == 0:
            return None
        rank = max(1, int(stats.count * q / 100.0 + 0.999999))
        cumulative = 0
        for i, count in enumerate(stats.bucket_counts):
            cumulative += count
            if cumulative >= rank:
                return LATENCY_BUCKETS[min(i, len(LATENCY_BUCKETS) - 1)]
        return LATENCY_BUCKETS[-1]
