"""Global hedge-clone budget: a token bucket over fired/answered.

An adversarial latency distribution — one where most requests sit just
past the trigger percentile — can make unbudgeted hedging clone nearly
everything, doubling cost for no tail win.  The budget bounds the
lifetime clone rate *provably*: tokens accrue at ``ratio`` per answered
request, the bucket never holds more than ``burst``, and every clone
launch spends one token, so

    ``fired <= burst + ratio * answered``

holds for any workload (the regression test pins exactly this bound).
The bucket is also the overload controller's brownout lever: flipping
``throttled`` refuses every clone while the machine is saturated,
whatever the token balance — speculative duplicates are precisely the
capacity live requests are missing.
"""

from __future__ import annotations

from typing import Optional


class HedgeBudget:
    """Token-bucket clone-rate limiter shared by all functions.

    ``ratio`` None disables rate limiting but keeps the bucket
    throttleable (the shape the overload controller installs when the
    user armed hedging without a budget).  ``waste_ceiling``
    additionally refuses clones while hedge-wasted cost exceeds the
    given fraction of the total bill so far.
    """

    def __init__(self, ratio: Optional[float] = None, burst: float = 4.0,
                 waste_ceiling: Optional[float] = None):
        if ratio is not None and ratio <= 0.0:
            raise ValueError(f"budget ratio must be positive: {ratio}")
        if burst < 1.0:
            raise ValueError(f"budget burst must be >= 1: {burst}")
        if waste_ceiling is not None and not 0.0 < waste_ceiling <= 1.0:
            raise ValueError(
                f"waste ceiling must be in (0, 1]: {waste_ceiling}"
            )
        self.ratio = ratio
        self.burst = float(burst)
        self.waste_ceiling = waste_ceiling
        self.tokens = float(burst)
        #: Brownout switch (repro.overload): while True every clone is
        #: refused regardless of token balance.
        self.throttled = False
        self.answered = 0
        self.granted = 0
        self.denied = 0
        self.denied_throttled = 0
        self.denied_waste = 0

    def on_answered(self) -> None:
        """One request answered: accrue clone budget."""
        self.answered += 1
        if self.ratio is not None:
            self.tokens = min(self.burst, self.tokens + self.ratio)

    def try_fire(self, wasted_cost: float = 0.0,
                 total_cost: float = 0.0) -> bool:
        """Spend one token for a clone launch; False refuses the clone."""
        if self.throttled:
            self.denied += 1
            self.denied_throttled += 1
            return False
        if (self.waste_ceiling is not None and total_cost > 0.0
                and wasted_cost / total_cost >= self.waste_ceiling):
            self.denied += 1
            self.denied_waste += 1
            return False
        if self.ratio is None:
            self.granted += 1
            return True
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.granted += 1
            return True
        self.denied += 1
        return False

    def snapshot(self) -> dict:
        """Deterministic lifetime accounting for the SLO report."""
        return {
            "ratio": self.ratio,
            "burst": self.burst,
            "waste_ceiling": self.waste_ceiling,
            "tokens": round(self.tokens, 9),
            "throttled": self.throttled,
            "granted": self.granted,
            "denied": self.denied,
            "denied_throttled": self.denied_throttled,
            "denied_waste": self.denied_waste,
        }
