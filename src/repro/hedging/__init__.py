"""Tail-latency hedging via request cloning (optional engine).

See :mod:`repro.hedging.engine` for the policy and
:mod:`repro.hedging.tracker` for the percentile trigger's data source.
"""

from repro.hedging.engine import HedgeConfig, HedgePolicy
from repro.hedging.tracker import LATENCY_BUCKETS, LatencyTracker

__all__ = [
    "HedgeConfig",
    "HedgePolicy",
    "LatencyTracker",
    "LATENCY_BUCKETS",
]
