"""Multi-threaded XPUcall handling (§5).

For XPUcall-intensive scenarios the shim runs several handler threads.
Two designs from the paper:

* **per-thread MPSC queues** (the prototype's choice): each thread owns
  a queue; callers are statically assigned, so a skewed assignment can
  leave threads idle while one is saturated;
* **a shared MPMC queue with work stealing** (the alternative the paper
  cites): any idle thread serves any pending call.

Both are implemented over the event kernel so the trade-off can be
measured (see ``bench_ablations``/tests).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import XpuError
from repro.hardware.pu import ProcessingUnit
from repro.sim import Event, Simulator, Store


class QueueDiscipline(enum.Enum):
    """How calls are distributed over shim handler threads."""

    MPSC_PER_THREAD = "mpsc-per-thread"
    MPMC_WORK_STEALING = "mpmc-work-stealing"


@dataclass
class _Call:
    caller_id: int
    service_s: float
    done: Event


class ShimThreadPool:
    """N shim handler threads draining XPUcall queues."""

    def __init__(
        self,
        sim: Simulator,
        pu: ProcessingUnit,
        threads: int = 2,
        discipline: QueueDiscipline = QueueDiscipline.MPSC_PER_THREAD,
    ):
        if threads < 1:
            raise XpuError(f"thread count must be >= 1: {threads}")
        self.sim = sim
        self.pu = pu
        self.threads = threads
        self.discipline = discipline
        if discipline is QueueDiscipline.MPMC_WORK_STEALING:
            self._queues = [Store(sim)]
        else:
            self._queues = [Store(sim) for _ in range(threads)]
        self.handled = [0] * threads
        for index in range(threads):
            sim.spawn(self._worker(index), name=f"shim-thread-{index}")

    def _queue_for(self, caller_id: int) -> Store:
        if self.discipline is QueueDiscipline.MPMC_WORK_STEALING:
            return self._queues[0]
        # Static assignment: callers hash onto their thread's queue.
        return self._queues[caller_id % len(self._queues)]

    def _worker(self, index: int):
        if self.discipline is QueueDiscipline.MPMC_WORK_STEALING:
            queue = self._queues[0]
        else:
            queue = self._queues[index]
        while True:
            call = yield queue.get()
            # Dequeue bookkeeping + the call's service time.
            yield self.sim.timeout(self.pu.op_time())
            yield self.sim.timeout(call.service_s)
            self.handled[index] += 1
            call.done.succeed(self.sim.now)

    def submit(self, caller_id: int, service_s: float) -> Event:
        """Enqueue one call; the returned event fires at completion."""
        if service_s < 0:
            raise XpuError(f"negative service time: {service_s}")
        done = self.sim.event()
        call = _Call(caller_id=caller_id, service_s=service_s, done=done)
        self._queue_for(caller_id).put(call)
        return done

    @property
    def load_imbalance(self) -> float:
        """max/mean handled-calls ratio (1.0 = perfectly balanced)."""
        total = sum(self.handled)
        if total == 0:
            return 1.0
        mean = total / self.threads
        return max(self.handled) / mean


def burst_completion_time(
    sim: Simulator,
    pool: ShimThreadPool,
    calls: int,
    service_s: float,
    skewed: bool = False,
) -> float:
    """Run a burst of ``calls`` XPUcalls and return the makespan.

    ``skewed=True`` sends every call from the same caller — the worst
    case for static per-thread assignment, which work stealing fixes.
    """
    begin = sim.now
    events = []
    for index in range(calls):
        caller = 0 if skewed else index
        events.append(pool.submit(caller, service_s))

    def waiter(sim):
        yield sim.all_of(events)

    proc = sim.spawn(waiter(sim))
    sim.run()
    if not proc.processed:
        raise XpuError("burst did not complete")
    return sim.now - begin
