"""XPUcall transports (Fig. 7).

An XPUcall crosses from a user process into the XPU-Shim daemon on the
same PU.  The paper implements and measures three transports:

* **FIFO** (Fig. 7a): request and response each traverse a kernel FIFO —
  two IPC round trips (4 notifications).  ~100us on Bluefield-1,
  ~20us on the host CPU (§5).
* **MPSC** (Fig. 7b): requests go through a shared multi-producer
  single-consumer queue the shim polls; only the response uses a FIFO.
* **MPSC_POLL** (Fig. 7c): the process also polls shared memory for the
  response, eliminating kernel IPC entirely (the paper's default on
  devices).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.sim import Simulator, Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.pu import ProcessingUnit


class XpucallTransport(enum.Enum):
    """How a process reaches the local shim daemon."""

    FIFO = "fifo"
    MPSC = "mpsc"
    MPSC_POLL = "mpsc_poll"

    def request_time(self, pu: "ProcessingUnit") -> float:
        """Cost of delivering the request into the shim."""
        if self is XpucallTransport.FIFO:
            # write FIFO-req (notify) + shim wakeup (notify) + parse op
            return 2 * pu.ipc_notify_time() + pu.op_time()
        # enqueue into the MPSC queue + shim poll pickup
        return pu.op_time(2)

    def response_time(self, pu: "ProcessingUnit") -> float:
        """Cost of delivering the shim's response back to the process."""
        if self is XpucallTransport.MPSC_POLL:
            # shim writes per-process shared memory + process polls it
            return pu.op_time(2)
        # write FIFO-res (notify) + process wakeup (notify) + parse op
        return 2 * pu.ipc_notify_time() + pu.op_time()

    def round_trip_time(self, pu: "ProcessingUnit") -> float:
        """Total user<->shim overhead of one XPUcall."""
        return self.request_time(pu) + self.response_time(pu)


def default_transport(pu: "ProcessingUnit") -> XpucallTransport:
    """The paper's default choice per PU.

    §6.1: the polling optimisations are applied on devices (where the
    naive XPUcall costs ~100us) but *not* on the CPU (where it costs
    only ~20us).
    """
    from repro.hardware.pu import PuKind

    if pu.kind is PuKind.DPU:
        return XpucallTransport.MPSC_POLL
    return XpucallTransport.FIFO


class MpscQueue:
    """The shared multi-producer single-consumer request queue.

    For security the queue only carries *which process* issued a call;
    the invocation arguments live in per-process shared memory, so a
    malicious producer can at worst DoS the queue, never read another
    process's arguments (§5).
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._store = Store(sim)
        self.enqueued = 0

    def enqueue(self, xpu_pid) -> None:
        """Producer side: publish that ``xpu_pid`` has a pending call."""
        self._store.put(xpu_pid)
        self.enqueued += 1

    def dequeue(self):
        """Consumer (shim) side: event yielding the next caller pid."""
        return self._store.get()

    def __len__(self) -> int:
        return len(self._store)
