"""Inter-PU state synchronisation (§5 "Inter-PU synchronization").

XPU-Shim follows multikernel designs and synchronises global state by
explicit message passing, with three strategies:

* **static partition** — no synchronisation: xpu_pids encode the PU id,
  so process create/destroy is handled entirely locally;
* **immediate** — globally-unique names (XPU-FIFO UUIDs) and every
  capability update are pushed to all peers right away, so permission
  checks always complete locally;
* **lazy** — harmless stale state (e.g. freed-UUID garbage collection)
  is batched and flushed after a window.
"""

from __future__ import annotations

import enum
from typing import Callable, TYPE_CHECKING

from repro import config
from repro.sim import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.machine import HeterogeneousComputer


class SyncStrategy(enum.Enum):
    """How one class of global state is kept consistent."""

    STATIC_PARTITION = "static-partition"
    IMMEDIATE = "immediate"
    LAZY = "lazy"


class SyncManager:
    """Executes synchronisation rounds over the machine's interconnect."""

    def __init__(self, sim: Simulator, machine: "HeterogeneousComputer"):
        self.sim = sim
        self.machine = machine
        #: Counters for tests and the sync-strategy ablation bench.
        self.immediate_rounds = 0
        self.lazy_pending: list[Callable[[], None]] = []
        self.lazy_flushes = 0
        self._flusher_armed = False

    def _peer_pus(self, origin_pu_id: int) -> list[int]:
        return [
            pu.pu_id
            for pu in self.machine.general_purpose_pus()
            if pu.pu_id != origin_pu_id
        ]

    def immediate_sync_time(self, origin_pu_id: int, message_bytes: int = 64) -> float:
        """Wall time of one immediate synchronisation round.

        Peers are updated in parallel; the round completes when the
        slowest acknowledgment returns (one message each way).
        """
        peers = self._peer_pus(origin_pu_id)
        if not peers:
            return 0.0
        per_peer = []
        for peer in peers:
            route = self.machine.interconnect.route(origin_pu_id, peer)
            round_trip = 2 * route.transfer_time(message_bytes)
            per_peer.append(round_trip + config.SYNC_ROUND_TRIP_US * config.US)
        return max(per_peer)

    def immediate(self, origin_pu_id: int, apply: Callable[[], None]):
        """Generator: apply a state change and push it to every peer."""
        apply()
        cost = self.immediate_sync_time(origin_pu_id)
        if cost:
            yield self.sim.timeout(cost)
        self.immediate_rounds += 1

    def lazy(self, apply: Callable[[], None]) -> None:
        """Queue a state change for batched propagation.

        The local effect is immediate (stale remote views are harmless
        by design); remote propagation happens at the next flush.
        """
        self.lazy_pending.append(apply)
        if not self._flusher_armed:
            self._flusher_armed = True
            self.sim.spawn(self._flush_after_window())

    def _flush_after_window(self):
        yield self.sim.timeout(config.LAZY_SYNC_WINDOW_S)
        self.flush()

    def flush(self) -> int:
        """Apply every pending lazy update in one batch; returns count."""
        applied = len(self.lazy_pending)
        for apply in self.lazy_pending:
            apply()
        self.lazy_pending.clear()
        self._flusher_armed = False
        if applied:
            self.lazy_flushes += 1
        return applied
