"""XPU-FIFO: the neighbour-IPC primitive (§3.3).

An XPU-FIFO is a distributed FIFO identified by a global UUID.  Its
buffer lives on the *home* PU (where it was created).  A same-PU access
degenerates to a plain local FIFO (fast-path IPC); a cross-PU access is
*neighbour IPC*: an XPUcall into the local shim plus a transfer over
the hardware interconnect (RDMA/DMA), with no network stack or API
gateway in the path.
"""

from __future__ import annotations

import enum
from typing import Any, Optional, TYPE_CHECKING

from repro.errors import FifoError
from repro.sim import Simulator, Store
from repro.xpu.capability import ObjectId, Permission

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.pu import ProcessingUnit


class FifoEnd(enum.Enum):
    """Which rights a handle carries."""

    READ = "read"
    WRITE = "write"
    BOTH = "both"

    def permission(self) -> Permission:
        """The capability bits this end requires."""
        if self is FifoEnd.READ:
            return Permission.READ
        if self is FifoEnd.WRITE:
            return Permission.WRITE
        return Permission.READ | Permission.WRITE


class XpuFifo:
    """The distributed FIFO object (an ``IPC`` distributed object)."""

    def __init__(
        self,
        sim: Simulator,
        global_uuid: str,
        local_uuid: str,
        home_pu: "ProcessingUnit",
    ):
        self.sim = sim
        self.global_uuid = global_uuid
        self.local_uuid = local_uuid
        self.home_pu = home_pu
        self.obj_id = ObjectId("fifo", global_uuid)
        self._buffer: Store = Store(sim)
        self.closed = False
        #: Open handles; the FIFO's resources are revoked at zero (§5
        #: lazy synchronisation of the freed UUID).
        self.ref_count = 0
        #: Message counters for tests and reports.
        self.messages_written = 0

    def deposit(self, payload: Any, size: int) -> None:
        """Place a message into the home-side buffer."""
        self._require_open()
        self._buffer.put((payload, size))
        self.messages_written += 1

    def take(self):
        """Event yielding the next (payload, size) tuple."""
        self._require_open()
        return self._buffer.get()

    @property
    def pending(self) -> int:
        """Messages deposited but not yet taken."""
        return len(self._buffer)

    def _require_open(self) -> None:
        if self.closed:
            raise FifoError(f"XPU-FIFO {self.global_uuid!r} is closed")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<XpuFifo {self.global_uuid} home={self.home_pu.name}>"


class XpuFifoHandle:
    """A process's open descriptor (``xpu_fd``) for one XPU-FIFO."""

    def __init__(self, fifo: XpuFifo, end: FifoEnd, holder_pu: "ProcessingUnit"):
        self.fifo = fifo
        self.end = end
        self.holder_pu = holder_pu
        self.open = True
        fifo.ref_count += 1

    @property
    def is_local(self) -> bool:
        """True when the holder runs on the FIFO's home PU."""
        return self.holder_pu.pu_id == self.fifo.home_pu.pu_id

    def close(self) -> int:
        """Release the descriptor; returns the remaining ref count."""
        if not self.open:
            raise FifoError("handle already closed")
        self.open = False
        self.fifo.ref_count -= 1
        return self.fifo.ref_count

    def require_open(self) -> None:
        """Raise if this descriptor was closed."""
        if not self.open:
            raise FifoError("operation on closed xpu_fd")
