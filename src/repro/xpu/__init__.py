"""XPU-Shim: distributed capabilities, XPUcalls and neighbour IPC."""

from repro.xpu.capability import (
    CapabilityTable,
    CapGroup,
    ObjectId,
    Permission,
    XpuPid,
)
from repro.xpu.fifo import FifoEnd, XpuFifo, XpuFifoHandle
from repro.xpu.shim import ShimCluster, XpuShim
from repro.xpu.sync import SyncManager, SyncStrategy
from repro.xpu.threading import QueueDiscipline, ShimThreadPool
from repro.xpu.xpucall import MpscQueue, XpucallTransport, default_transport

__all__ = [
    "CapGroup",
    "CapabilityTable",
    "FifoEnd",
    "MpscQueue",
    "ObjectId",
    "Permission",
    "QueueDiscipline",
    "ShimCluster",
    "ShimThreadPool",
    "SyncManager",
    "SyncStrategy",
    "XpuFifo",
    "XpuFifoHandle",
    "XpuPid",
    "XpuShim",
    "XpucallTransport",
    "default_transport",
]
