"""Distributed capabilities (§3.2).

XPU-Shim maintains global resources and permissions with *distributed
objects* and *capabilities*.  Two distributed object kinds exist in the
prototype: ``CAP_Group`` (all capabilities of a process) and ``IPC``
(the XPU-FIFO connection object).

A process is globally identified by an *xpu_pid* encoding (PU-ID,
local UUID) — the static partitioning that lets process creation avoid
any cross-PU synchronisation (§5 "no synchronization").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.errors import CapabilityError, UnknownObjectError


class XpuPid(NamedTuple):
    """Globally unique process id: (PU id, local OS UUID)."""

    pu_id: int
    local_uid: int

    def encode(self) -> int:
        """Pack into a single integer (PU id in the high bits)."""
        return (self.pu_id << 32) | (self.local_uid & 0xFFFFFFFF)

    @classmethod
    def decode(cls, value: int) -> "XpuPid":
        """Unpack an encoded xpu_pid."""
        return cls(pu_id=value >> 32, local_uid=value & 0xFFFFFFFF)


class Permission(enum.Flag):
    """Access rights carried by one capability."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    #: The owner may grant/revoke access to the object (§3.2).
    OWNER = enum.auto()
    ALL = READ | WRITE | OWNER


@dataclass(frozen=True)
class ObjectId:
    """Identity of a distributed object."""

    kind: str  # "fifo" | "cap_group" | ...
    uuid: str

    def __str__(self) -> str:
        return f"{self.kind}:{self.uuid}"


class CapGroup:
    """The CAP_Group distributed object: a process's capability list."""

    def __init__(self, xpu_pid: XpuPid, name: str = ""):
        self.xpu_pid = xpu_pid
        self.name = name
        self._caps: dict[ObjectId, Permission] = {}

    def permissions_for(self, obj_id: ObjectId) -> Permission:
        """Current rights on ``obj_id`` (NONE when absent)."""
        return self._caps.get(obj_id, Permission.NONE)

    def has(self, obj_id: ObjectId, perm: Permission) -> bool:
        """True if this group holds every bit of ``perm`` on the object."""
        return (self.permissions_for(obj_id) & perm) == perm

    def add(self, obj_id: ObjectId, perm: Permission) -> None:
        """Add rights (union with any existing ones)."""
        self._caps[obj_id] = self.permissions_for(obj_id) | perm

    def remove(self, obj_id: ObjectId, perm: Permission) -> None:
        """Remove specific rights; drops the entry if nothing is left."""
        remaining = self.permissions_for(obj_id) & ~perm
        if remaining is Permission.NONE:
            self._caps.pop(obj_id, None)
        else:
            self._caps[obj_id] = remaining

    def require(self, obj_id: ObjectId, perm: Permission) -> None:
        """Raise :class:`CapabilityError` unless ``perm`` is held.

        This is the check performed inside every XPUcall (§3.2).
        """
        if not self.has(obj_id, perm):
            raise CapabilityError(
                f"process {self.xpu_pid} lacks {perm!r} on {obj_id}"
            )

    def capabilities(self) -> dict[ObjectId, Permission]:
        """A snapshot of all held capabilities."""
        return dict(self._caps)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CapGroup {self.xpu_pid} caps={len(self._caps)}>"


class CapabilityTable:
    """The cluster-wide registry of CAP_Groups and distributed objects.

    Conceptually replicated on every PU; the synchronisation strategies
    of :mod:`repro.xpu.sync` govern when replicas converge.  Capability
    *updates* are synchronised immediately so permission checks always
    complete locally (§5 "Immediate synchronization").
    """

    def __init__(self):
        self._groups: dict[XpuPid, CapGroup] = {}
        self._objects: dict[ObjectId, object] = {}

    # -- groups -----------------------------------------------------------------

    def register_group(self, group: CapGroup) -> None:
        """Add a new process's CAP_Group."""
        if group.xpu_pid in self._groups:
            raise CapabilityError(f"duplicate CAP_Group for {group.xpu_pid}")
        self._groups[group.xpu_pid] = group

    def drop_group(self, xpu_pid: XpuPid) -> None:
        """Remove a CAP_Group (process exit)."""
        self._groups.pop(xpu_pid, None)

    def group(self, xpu_pid: XpuPid) -> CapGroup:
        """CAP_Group of a process (raises for unknown pids)."""
        try:
            return self._groups[xpu_pid]
        except KeyError:
            raise UnknownObjectError(f"no CAP_Group for {xpu_pid}") from None

    def known_pids(self) -> list[XpuPid]:
        """All registered xpu_pids."""
        return sorted(self._groups)

    # -- objects -------------------------------------------------------------------

    def register_object(self, obj_id: ObjectId, obj: object) -> None:
        """Register a distributed object instance."""
        if obj_id in self._objects:
            raise CapabilityError(f"duplicate distributed object {obj_id}")
        self._objects[obj_id] = obj

    def drop_object(self, obj_id: ObjectId) -> None:
        """Remove a distributed object."""
        self._objects.pop(obj_id, None)

    def lookup(self, obj_id: ObjectId) -> object:
        """Resolve a distributed object (raises when missing)."""
        try:
            return self._objects[obj_id]
        except KeyError:
            raise UnknownObjectError(f"no distributed object {obj_id}") from None

    def has_object(self, obj_id: ObjectId) -> bool:
        """True if the object is registered."""
        return obj_id in self._objects
