"""XPU-Shim: the distributed shim between one serverless runtime and
many local OSes (§3.1).

One :class:`XpuShim` instance runs on every general-purpose PU;
accelerators are fronted by a *virtual* shim instance hosted on a
neighbouring CPU/DPU (§4.1).  The :class:`ShimCluster` holds the global
state all instances agree on — CAP_Groups, distributed objects, FIFO
UUIDs — kept consistent by the strategies in :mod:`repro.xpu.sync`.

All XPUcall methods are simulation generators: they charge the
transport overhead of reaching the local shim daemon (Fig. 7), perform
capability checks, and pay interconnect costs for cross-PU effects.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Sequence

from repro import config
from repro.errors import CapabilityError, FifoError, XpuError
from repro.hardware.machine import HeterogeneousComputer
from repro.hardware.pu import ProcessingUnit
from repro.multios.os import OsInstance
from repro.sim import Simulator
from repro.xpu.capability import (
    CapabilityTable,
    CapGroup,
    ObjectId,
    Permission,
    XpuPid,
)
from repro.xpu.fifo import FifoEnd, XpuFifo, XpuFifoHandle
from repro.xpu.sync import SyncManager
from repro.xpu.xpucall import XpucallTransport, default_transport


class FifoFault:
    """One active XPU-FIFO fault window, installed by the fault
    injector.

    ``mode`` is ``"drop"`` (the message is paid for but never
    deposited) or ``"delay"`` (an extra ``delay_s`` is charged before
    the deposit).  ``uuid`` scopes the window to one FIFO, or ``"*"``
    for every FIFO.  ``probability`` draws per message from a seeded
    stream, keeping runs reproducible; ``until_s`` bounds the window.
    """

    def __init__(
        self,
        uuid: str,
        mode: str,
        probability: float = 1.0,
        delay_s: float = 0.0,
        until_s: Optional[float] = None,
        rng=None,
    ):
        if mode not in ("drop", "delay"):
            raise FifoError(f"unknown FIFO fault mode: {mode!r}")
        self.uuid = uuid
        self.mode = mode
        self.probability = probability
        self.delay_s = delay_s
        self.until_s = until_s
        self.rng = rng
        #: Messages this window actually hit.
        self.hits = 0

    def matches(self, fifo_uuid: str, now: float) -> bool:
        """True while the window covers this FIFO at this time."""
        if self.until_s is not None and now > self.until_s:
            return False
        return self.uuid == "*" or self.uuid == fifo_uuid

    def fires(self) -> bool:
        """Draw whether this message is hit (seeded, reproducible)."""
        if self.probability >= 1.0:
            return True
        if self.rng is None:
            return False
        return self.rng.uniform(0.0, 1.0) < self.probability


class ShimCluster:
    """The distributed XPU-Shim deployment on one machine."""

    def __init__(
        self,
        sim: Simulator,
        machine: HeterogeneousComputer,
        obs: Optional[object] = None,
    ):
        self.sim = sim
        self.machine = machine
        self.captable = CapabilityTable()
        self.sync = SyncManager(sim, machine)
        self.shims: dict[int, "XpuShim"] = {}
        self._uid_counters: dict[int, itertools.count] = {}
        #: Optional :class:`repro.obs.Observability` hub; every shim
        #: instance reports XPUcall and nIPC metrics through it.
        self.obs = obs
        #: Active XPU-FIFO fault windows (see :class:`FifoFault`).
        self.fifo_faults: list[FifoFault] = []

    def active_fifo_fault(self, fifo_uuid: str) -> Optional[FifoFault]:
        """The first fault window covering ``fifo_uuid`` right now."""
        for fault in self.fifo_faults:
            if fault.matches(fifo_uuid, self.sim.now):
                return fault
        return None

    # -- deployment --------------------------------------------------------------

    def install(
        self,
        pu: ProcessingUnit,
        os_instance: Optional[OsInstance] = None,
        transport: Optional[XpucallTransport] = None,
    ) -> "XpuShim":
        """Start a shim instance on a general-purpose PU."""
        if not pu.is_general_purpose:
            raise XpuError(
                f"{pu.name} cannot run a shim directly; use install_virtual"
            )
        if pu.pu_id in self.shims:
            raise XpuError(f"shim already installed on {pu.name}")
        shim = XpuShim(self, pu, os_instance, transport or default_transport(pu))
        self.shims[pu.pu_id] = shim
        return shim

    def install_virtual(self, accel_pu: ProcessingUnit, host_shim: "XpuShim") -> "XpuShim":
        """Start a virtual shim for an accelerator on its host PU (§4.1)."""
        if accel_pu.is_general_purpose:
            raise XpuError(f"{accel_pu.name} is general purpose; use install")
        if accel_pu.pu_id in self.shims:
            raise XpuError(f"shim already installed for {accel_pu.name}")
        shim = XpuShim(
            self,
            accel_pu,
            host_shim.os,
            host_shim.transport,
            exec_pu=host_shim.pu,
        )
        self.shims[accel_pu.pu_id] = shim
        return shim

    def shim_on(self, pu_id: int) -> "XpuShim":
        """The shim instance for a PU id."""
        try:
            return self.shims[pu_id]
        except KeyError:
            raise XpuError(f"no XPU-Shim on PU {pu_id}") from None

    # -- global process registry -------------------------------------------------

    def allocate_xpu_pid(self, pu_id: int, local_uid: Optional[int] = None) -> XpuPid:
        """Mint a globally unique xpu_pid.

        Thanks to static partitioning (PU id in the high bits) this is
        purely local — no synchronisation round (§5).
        """
        counter = self._uid_counters.setdefault(pu_id, itertools.count(1))
        uid = local_uid if local_uid is not None else next(counter)
        return XpuPid(pu_id=pu_id, local_uid=uid)

    def register_process(self, pu_id: int, name: str = "", local_uid: Optional[int] = None) -> CapGroup:
        """Create and register a CAP_Group for a new process."""
        xpu_pid = self.allocate_xpu_pid(pu_id, local_uid)
        group = CapGroup(xpu_pid, name=name)
        self.captable.register_group(group)
        return group


class XpuShim:
    """One XPU-Shim instance (real on CPU/DPU, virtual for accelerators)."""

    def __init__(
        self,
        cluster: ShimCluster,
        pu: ProcessingUnit,
        os_instance: Optional[OsInstance],
        transport: XpucallTransport,
        exec_pu: Optional[ProcessingUnit] = None,
    ):
        self.cluster = cluster
        self.pu = pu
        self.os = os_instance
        self.transport = transport
        #: Where this shim's software actually executes: the PU itself,
        #: or the host PU for a virtual (accelerator) shim.
        self.exec_pu = exec_pu or pu
        #: XPUcall counter for tests and reports.
        self.calls_served = 0

    @property
    def sim(self) -> Simulator:
        """The simulator this shim runs on."""
        return self.cluster.sim

    # -- plumbing ----------------------------------------------------------------

    def _xpucall_overhead(self):
        """Generator: charge the local user<->shim transport cost."""
        round_trip = self.transport.round_trip_time(self.exec_pu)
        yield self.sim.timeout(round_trip)
        self.calls_served += 1
        obs = self.cluster.obs
        if obs is not None:
            obs.on_xpucall(self.pu.kind.value, self.transport.value, round_trip)

    def _route_to(self, other_pu_id: int):
        return self.cluster.machine.interconnect.route(self.pu.pu_id, other_pu_id)

    # -- Table 2: distributed capability calls --------------------------------------

    def get_xpupid(self, group: CapGroup):
        """XPUcall ``get_xpupid``: the caller's global id."""
        yield from self._xpucall_overhead()
        return group.xpu_pid

    def grant_cap(self, caller: CapGroup, target: XpuPid, obj_id: ObjectId, perm: Permission):
        """XPUcall ``grant_cap``: give ``target`` rights on an object.

        Only an OWNER may grant.  The update synchronises immediately so
        later checks are local everywhere (§5).
        """
        yield from self._xpucall_overhead()
        caller.require(obj_id, Permission.OWNER)
        target_group = self.cluster.captable.group(target)
        yield from self.cluster.sync.immediate(
            self.pu.pu_id, lambda: target_group.add(obj_id, perm)
        )
        return 0

    def revoke_cap(self, caller: CapGroup, target: XpuPid, obj_id: ObjectId, perm: Permission):
        """XPUcall ``revoke_cap``: remove rights previously granted."""
        yield from self._xpucall_overhead()
        caller.require(obj_id, Permission.OWNER)
        target_group = self.cluster.captable.group(target)
        yield from self.cluster.sync.immediate(
            self.pu.pu_id, lambda: target_group.remove(obj_id, perm)
        )
        return 0

    # -- Table 2: neighbour IPC calls ---------------------------------------------------

    def xfifo_init(self, caller: CapGroup, local_uuid: str, global_uuid: str):
        """XPUcall ``xfifo_init``: create an XPU-FIFO homed on this PU.

        The global UUID must be unique machine-wide, so registration is
        an immediate synchronisation round (§5).
        """
        yield from self._xpucall_overhead()
        obj_id = ObjectId("fifo", global_uuid)
        if self.cluster.captable.has_object(obj_id):
            raise FifoError(f"XPU-FIFO uuid {global_uuid!r} already in use")
        fifo = XpuFifo(self.sim, global_uuid, local_uuid, self.pu)
        yield from self.cluster.sync.immediate(
            self.pu.pu_id,
            lambda: self.cluster.captable.register_object(obj_id, fifo),
        )
        caller.add(obj_id, Permission.ALL)
        return XpuFifoHandle(fifo, FifoEnd.BOTH, self.pu)

    def xfifo_connect(self, caller: CapGroup, global_uuid: str, end: FifoEnd = FifoEnd.WRITE):
        """XPUcall ``xfifo_connect``: open a descriptor on an XPU-FIFO.

        The capability check requires read or write permission (§3.2).
        """
        yield from self._xpucall_overhead()
        obj_id = ObjectId("fifo", global_uuid)
        caller.require(obj_id, end.permission())
        fifo = self.cluster.captable.lookup(obj_id)
        assert isinstance(fifo, XpuFifo)
        return XpuFifoHandle(fifo, end, self.pu)

    def xfifo_close(self, caller: CapGroup, handle: XpuFifoHandle):
        """XPUcall ``xfifo_close``: drop a descriptor.

        When the reference count reaches zero the FIFO's resources are
        revoked locally and the UUID reclamation propagates lazily (§5).
        """
        yield from self._xpucall_overhead()
        remaining = handle.close()
        if remaining == 0:
            fifo = handle.fifo
            fifo.closed = True
            self.cluster.sync.lazy(
                lambda: self.cluster.captable.drop_object(fifo.obj_id)
            )
        return 0

    def xfifo_write(self, caller: CapGroup, handle: XpuFifoHandle, payload: Any, size: int):
        """XPUcall ``xfifo_write``: send a message.

        Local fast path: a plain FIFO write (copy + notify), no shim.
        Cross-PU (neighbour IPC): shim transport + interconnect transfer
        + remote deposit.
        """
        handle.require_open()
        if size < 0:
            raise FifoError(f"negative message size: {size}")
        if not handle.end.permission() & Permission.WRITE:
            raise CapabilityError("handle is read-only")
        caller.require(handle.fifo.obj_id, Permission.WRITE)
        obs = self.cluster.obs
        fault = self.cluster.active_fifo_fault(handle.fifo.global_uuid)
        dropped = False
        if fault is not None and fault.fires():
            fault.hits += 1
            if fault.mode == "delay":
                yield self.sim.timeout(fault.delay_s)
                if obs is not None:
                    obs.on_nipc_delayed()
            else:  # drop: transport costs are still paid below
                dropped = True
        if handle.is_local:
            yield self.sim.timeout(self.exec_pu.copy_time(size))
            yield self.sim.timeout(self.exec_pu.ipc_notify_time())
            if dropped:
                if obs is not None:
                    obs.on_nipc_dropped()
                return size
            handle.fifo.deposit(payload, size)
            if obs is not None:
                obs.on_nipc_message("local", size)
            return size
        yield from self._xpucall_overhead()
        yield self.sim.timeout(self.exec_pu.copy_time(size))
        route = self._route_to(handle.fifo.home_pu.pu_id)
        yield self.sim.timeout(route.transfer_time(size))
        yield self.sim.timeout(handle.fifo.home_pu.op_time())
        if dropped:
            if obs is not None:
                obs.on_nipc_dropped()
            return size
        handle.fifo.deposit(payload, size)
        if obs is not None:
            obs.on_nipc_message("cross", size)
        return size

    def xfifo_read(self, caller: CapGroup, handle: XpuFifoHandle):
        """XPUcall ``xfifo_read``: block until a message arrives.

        Functions block on their self-FIFO with this call (§4.3).
        """
        handle.require_open()
        if not handle.end.permission() & Permission.READ:
            raise CapabilityError("handle is write-only")
        caller.require(handle.fifo.obj_id, Permission.READ)
        payload, size = yield handle.fifo.take()
        if not handle.is_local:
            route = self._route_to(handle.fifo.home_pu.pu_id)
            yield from self._xpucall_overhead()
            yield self.sim.timeout(route.transfer_time(size))
        yield self.sim.timeout(self.exec_pu.copy_time(size))
        return payload

    # -- Table 2: misc -------------------------------------------------------------------

    def xspawn(
        self,
        caller: CapGroup,
        target_pu_id: int,
        name: str,
        exec_ms: float = config.XSPAWN_EXEC_MS,
        capv: Sequence[tuple[ObjectId, Permission]] = (),
    ):
        """XPUcall ``xSpawn``: start a program on a neighbour PU.

        No permission is implicitly shared between parent and child; the
        explicit ``capv`` array carries every granted capability (§3.4).
        Returns the child's (xpu_pid, CapGroup, OsProcess).
        """
        yield from self._xpucall_overhead()
        target_shim = self.cluster.shim_on(target_pu_id)
        if target_shim.os is None:
            raise XpuError(f"PU {target_pu_id} runs no OS; cannot xSpawn onto it")
        route = self._route_to(target_pu_id)
        yield self.sim.timeout(route.transfer_time(256))  # command message
        process = yield from target_shim.os.spawn(name, exec_ms=exec_ms)
        group = self.cluster.register_process(
            target_pu_id, name=name, local_uid=process.pid
        )
        for obj_id, perm in capv:
            caller.require(obj_id, Permission.OWNER)
            group.add(obj_id, perm)
        yield self.sim.timeout(route.transfer_time(64))  # response message
        return group.xpu_pid, group, process
