"""Molecule reproduction: serverless computing on heterogeneous computers.

A calibrated discrete-event reimplementation of the ASPLOS'22 Molecule
system (Du et al.): XPU-Shim, neighbour IPC, distributed capabilities,
vectorized sandboxes (runc / runf / runG), cfork, and the benchmarks
that regenerate every figure and table of the paper's evaluation.

Quickstart::

    from repro import MoleculeRuntime, FunctionDef, FunctionCode
    from repro import Language, PuKind, WorkProfile

    molecule = MoleculeRuntime.create(num_dpus=2)
    hello = FunctionDef(
        name="hello",
        code=FunctionCode("hello", language=Language.PYTHON),
        work=WorkProfile(warm_exec_ms=5.0),
        profiles=(PuKind.CPU, PuKind.DPU),
    )
    molecule.deploy_now(hello)
    result = molecule.invoke_now("hello")
    print(result.total_ms, result.pu_name, result.cold)
"""

from repro.core import (
    Chain,
    ChainResult,
    ChainStage,
    FunctionDef,
    FunctionRegistry,
    InvocationResult,
    MoleculeRuntime,
    WorkProfile,
)
from repro.core.reliability import RetryPolicy
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.futures import (
    FanoutConfig,
    FanoutEngine,
    FanoutFuture,
    Partitioner,
    wait,
)
from repro.hardware import (
    HeterogeneousComputer,
    PuKind,
    build_cpu_dpu_machine,
    build_cpu_fpga_machine,
    build_full_machine,
)
from repro.hedging import HedgeConfig, HedgePolicy
from repro.overload import OverloadConfig, OverloadController
from repro.sandbox import FunctionCode, Language
from repro.sim import Simulator
from repro.warmpath import WarmPathConfig, WarmPathEngine

__version__ = "1.0.0"

__all__ = [
    "Chain",
    "ChainResult",
    "ChainStage",
    "FanoutConfig",
    "FanoutEngine",
    "FanoutFuture",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FunctionCode",
    "FunctionDef",
    "FunctionRegistry",
    "HeterogeneousComputer",
    "HedgeConfig",
    "HedgePolicy",
    "InvocationResult",
    "Language",
    "MoleculeRuntime",
    "OverloadConfig",
    "OverloadController",
    "Partitioner",
    "PuKind",
    "RetryPolicy",
    "Simulator",
    "WarmPathConfig",
    "WarmPathEngine",
    "WorkProfile",
    "build_cpu_dpu_machine",
    "build_cpu_fpga_machine",
    "build_full_machine",
    "wait",
    "__version__",
]
