"""Exception hierarchy for the Molecule reproduction.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly (e.g. double-trigger)."""


class Interrupt(ReproError):
    """Thrown into a simulated process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed by the interrupter.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class HardwareError(ReproError):
    """Base class for hardware-model errors."""


class RoutingError(HardwareError):
    """No interconnect route exists between two processing units."""


class FpgaResourceError(HardwareError):
    """An FPGA image does not fit the device's fabric resources."""


class FpgaStateError(HardwareError):
    """An FPGA operation was issued in an invalid device state."""


class OsError_(ReproError):
    """Base class for multi-OS substrate errors.

    Named with a trailing underscore to avoid shadowing the builtin
    ``OSError``.
    """


class UnknownProcessError(OsError_):
    """A PID does not name a live process on this OS instance."""


class FifoError(OsError_):
    """Invalid operation on a (local or XPU) FIFO."""


class XpuError(ReproError):
    """Base class for XPU-Shim errors."""


class CapabilityError(XpuError):
    """Permission denied by the distributed capability system."""


class UnknownObjectError(XpuError):
    """A distributed object id does not resolve to a live object."""


class SandboxError(ReproError):
    """Base class for sandbox-runtime errors."""


class SandboxStateError(SandboxError):
    """An OCI operation was invoked in a state that does not allow it."""


class SchedulingError(ReproError):
    """The control plane could not place a function instance."""


class ReliabilityError(ReproError):
    """Base class for the reliability layer's terminal request errors."""


class DeadlineExceeded(ReliabilityError):
    """A request overran the deadline stamped at gateway admission."""


class RetriesExhaustedError(ReliabilityError):
    """Every retry attempt of a request failed; it was dead-lettered.

    ``attempts`` is the number of attempts made and ``errors`` the
    per-attempt error strings, oldest first.
    """

    def __init__(self, message: str, attempts: int = 0, errors=()):
        super().__init__(message)
        self.attempts = attempts
        self.errors = tuple(errors)


class RequestShed(ReliabilityError):
    """The overload controller refused this request at shard admission
    (repro.overload): the bounded admission queue was full, or the
    queue wait (estimated up front or actually accrued) had already
    consumed the request's deadline budget.

    Terminal but deliberately *cheap*: a shed request never reaches the
    retry loop and is never dead-lettered — the client is expected to
    back off and resubmit against a less-loaded ingress.  ``reason`` is
    one of ``"queue_full"``, ``"predicted_wait"`` or ``"deadline"``.
    """

    def __init__(self, message: str, reason: str = "queue_full",
                 request_id=None):
        super().__init__(message)
        self.reason = reason
        self.request_id = request_id


class FanoutPartialFailure(ReliabilityError):
    """A fan-out job (repro.futures) finished with some partitions in a
    terminal non-answer state: shed by the overload controller,
    dead-lettered out of retries, or expired past the deadline.

    The parent ``map``/``map_reduce`` call raises this instead of a
    partial result so callers never silently reduce over holes.
    ``done``/``shed``/``failed`` count the partition fates and
    ``errors`` carries one representative message per failed partition,
    in partition order.
    """

    def __init__(self, message: str, done: int = 0, shed: int = 0,
                 failed: int = 0, errors=()):
        super().__init__(message)
        self.done = done
        self.shed = shed
        self.failed = failed
        self.errors = tuple(errors)


class HedgeCancelled(ReproError):
    """A hedged request copy was cancelled because the other copy
    already answered (repro.hedging).  Internal control flow: raised at
    a cancellation checkpoint inside the invoker and always caught by
    the hedge join — it never reaches the retry loop or a caller.

    ``wasted_s`` carries the execution time the cancelled copy had
    already burned (0.0 when cancelled before executing).
    """

    def __init__(self, wasted_s: float = 0.0):
        super().__init__(wasted_s)
        self.wasted_s = wasted_s


class FaultInjectedError(ReproError):
    """An injected fault (PU crash, bitstream failure, ...) hit this
    operation.  Transient from the invoker's point of view: attempts
    failing with it are retried."""


class FaultPlanError(ReproError):
    """A fault plan is malformed (bad trigger, unknown kind, ...)."""


class RegistryError(ReproError):
    """Function registry misuse (duplicate or unknown function)."""


class WorkloadError(ReproError):
    """A workload definition is inconsistent or references no profile."""
