"""Ablation benches: the design choices DESIGN.md calls out.

Not paper figures — these isolate each mechanism's contribution:
XPUcall transports (Fig. 7), sync strategies (§5), keep-alive capacity
(§4.2), and direct-connect vs bus-mediated DAG calls (§4.3).
"""

from repro.analysis import ablations
from repro.analysis.report import format_table


def bench_ablation_xpucall_transports(benchmark):
    rows = benchmark(ablations.xpucall_transport_ablation)
    print()
    print(
        format_table(
            ["pu", "transport", "round trip (us)"],
            [(r.pu, r.transport, f"{r.round_trip_us:.1f}") for r in rows],
        )
    )
    by_key = {(r.pu, r.transport): r.round_trip_us for r in rows}
    assert by_key[("bf1", "fifo")] > by_key[("bf1", "mpsc")] > by_key[("bf1", "mpsc_poll")]


def bench_ablation_sync_strategies(benchmark):
    result = benchmark(ablations.sync_strategy_ablation)
    print()
    print(
        format_table(
            ["strategy", "critical-path cost (us)"],
            [
                ("static partition (xpu_pid)", f"{result.static_partition_us:.1f}"),
                ("immediate (caps, fifo uuids)", f"{result.immediate_us:.1f}"),
                ("lazy (uuid reclamation)", f"{result.lazy_us:.1f}"),
            ],
        )
    )
    assert result.immediate_us > result.lazy_us == result.static_partition_us == 0.0


def bench_ablation_keepalive(benchmark):
    rows = benchmark(ablations.keepalive_ablation)
    print()
    print(
        format_table(
            ["pool capacity", "hit rate", "mean latency (ms)"],
            [
                (r.pool_capacity, f"{r.hit_rate:.2f}", f"{r.mean_latency_ms:.1f}")
                for r in rows
            ],
        )
    )
    assert rows[-1].hit_rate > rows[0].hit_rate
    assert rows[-1].mean_latency_ms < rows[0].mean_latency_ms


def bench_ablation_dag_direct_vs_bus(benchmark):
    result = benchmark(ablations.dag_direct_vs_bus)
    print()
    print(
        f"direct-connect: {result.direct_total_ms:.2f}ms, "
        f"bus-mediated: {result.bus_total_ms:.2f}ms "
        f"({result.improvement:.2f}x)"
    )
    assert result.bus_total_ms > result.direct_total_ms
