"""Figure 8: nIPC latency vs message size.

Paper: nIPC ranges 25-144us depending on the XPUcall implementation;
polling beats the DPU's local Linux FIFO and trails the CPU's by
1.5x-3.1x.
"""

from repro.analysis import experiments as ex
from repro.analysis.report import format_table

SERIES = ("nIPC-Base", "nIPC-MPSC", "nIPC-Poll", "Linux (DPU)", "Linux (CPU)")


def bench_fig8_nipc(benchmark):
    result = benchmark(ex.fig8_nipc)
    sizes = sorted(next(iter(result.series.values())))
    print()
    rows = [
        (name, *(f"{result.series[name][size]:.1f}" for size in sizes))
        for name in SERIES
    ]
    print(format_table(["series \\ bytes", *map(str, sizes)], rows))
    print(result.paper_note)
    for size in sizes:
        assert (
            result.series["nIPC-Base"][size]
            > result.series["nIPC-MPSC"][size]
            > result.series["nIPC-Poll"][size]
        )
        assert result.series["nIPC-Poll"][size] < result.series["Linux (DPU)"][size] + 1
