"""Table 4: FPGA resource utilisation.

Paper: the 12-instance wrapper (4x madd/mmult/mscale + shell) uses
119,517 LUTs (10.1%), 196,996 REGs (8.3%), 486 BRAMs (22.5%) and
787 DSPs (11.5%) of one AWS F1 device.
"""

import pytest

from repro.analysis import experiments as ex
from repro.analysis.report import format_table


def bench_table4_fpga_resources(benchmark):
    result = benchmark(ex.table4_fpga_resources)
    print()
    print(
        format_table(
            ["resource", "F1 total", "wrapper (12 fn)", "fraction", "paper"],
            [
                (
                    key,
                    f"{result.totals[key]:,.0f}",
                    f"{result.wrapper[key]:,.0f}",
                    f"{result.fractions[key]:.1%}",
                    f"{result.paper_fractions[key]:.1%}",
                )
                for key in ("luts", "regs", "brams", "dsps")
            ],
        )
    )
    for key, paper_value in result.paper_wrapper.items():
        assert result.wrapper[key] == pytest.approx(paper_value, rel=0.001)
