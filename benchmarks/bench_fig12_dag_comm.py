"""Figure 12: serverless DAG communication latency (Alexa edges).

Paper: Molecule's IPC/nIPC DAG calls achieve 10-18x lower per-edge
latency than the Express-based baseline in all four placement cases.
"""

from repro.analysis import experiments as ex
from repro.analysis.report import format_table


def bench_fig12_dag_comm(benchmark):
    result = benchmark(ex.fig12_dag_comm)
    print()
    for case in result.cases:
        rows = [
            (edge, f"{base:.2f}", f"{mol:.3f}", f"{base / mol:.1f}x")
            for edge, base, mol in zip(
                case.edge_names, case.baseline_ms, case.molecule_ms
            )
        ]
        print(f"-- {case.case} --")
        print(format_table(["edge", "baseline (ms)", "molecule (ms)", "speedup"], rows))
    print(result.paper_note)
    for case in result.cases:
        for speedup in case.speedups:
            assert speedup > 10.0
