"""Figure 11: cfork breakdown and memory usage.

Paper (desktop i7): baseline 85.55ms -> naive cfork 47.25ms ->
+FuncContainer 30.05ms -> +cpuset opt 8.40ms; Molecule's PSS is ~34%
lower at 16 concurrent instances while its RSS is higher (template).
"""

import pytest

from repro.analysis import experiments as ex
from repro.analysis.report import format_table


def bench_fig11a_cfork_breakdown(benchmark):
    result = benchmark(ex.fig11a_cfork_breakdown)
    print()
    print(
        format_table(
            ["stage", "measured (ms)", "paper (ms)"],
            [
                (stage, f"{result.measured_ms[stage]:.2f}", f"{paper:.2f}")
                for stage, paper in result.paper_ms.items()
            ],
        )
    )
    for stage, paper in result.paper_ms.items():
        assert result.measured_ms[stage] == pytest.approx(paper, rel=0.001)


def bench_fig11bc_memory(benchmark):
    result = benchmark(ex.fig11bc_memory)
    print()
    print(
        format_table(
            ["instances", "base RSS", "mol RSS", "base PSS", "mol PSS"],
            [
                (
                    n,
                    f"{result.baseline_rss[i]:.1f}",
                    f"{result.molecule_rss[i]:.1f}",
                    f"{result.baseline_pss[i]:.1f}",
                    f"{result.molecule_pss[i]:.1f}",
                )
                for i, n in enumerate(result.instance_counts)
            ],
        )
    )
    print(f"PSS saving at {result.instance_counts[-1]} instances: "
          f"{result.pss_saving_at_max:.1%} (paper: ~34%)")
    assert 0.25 < result.pss_saving_at_max < 0.45
