"""The Alexa skill as its real tree shape (fan-out, beyond the linear
chain approximation of Fig. 12).

smarthome fans out to door and light; with Molecule's direct-connect
FIFOs the two branches run concurrently, so the tree finishes faster
than the serialized 5-stage chain while measuring the same four edges.
"""

from repro import MoleculeRuntime
from repro.analysis.report import format_table
from repro.core.dagraph import DagGraphEngine, alexa_tree
from repro.workloads import serverlessbench


def _run_tree():
    molecule = MoleculeRuntime.create(num_dpus=1)
    for function in serverlessbench.alexa_functions():
        molecule.deploy_now(function)
    dag = alexa_tree()
    engine = DagGraphEngine(molecule)
    placements = engine.co_locate(dag, molecule.machine.host_cpu)
    molecule.run(engine.prepare(dag, placements))
    tree_result = molecule.run(engine.run(dag, placements))

    chain = serverlessbench.alexa_chain()
    chain_placements = [molecule.machine.host_cpu] * 5
    molecule.run(molecule.dag.prepare(chain, chain_placements))
    chain_result = molecule.run(molecule.run_chain(chain, chain_placements))
    return tree_result, chain_result


def bench_dag_tree_vs_chain(benchmark):
    tree, chain = benchmark(_run_tree)
    print()
    print(
        format_table(
            ["edge", "tree latency (ms)"],
            [
                (f"{src}->{dst}", f"{latency * 1e3:.3f}")
                for (src, dst), latency in sorted(tree.edge_latencies_s.items())
            ],
        )
    )
    print(f"tree total: {tree.total_ms:.2f} ms  vs  linear chain: "
          f"{chain.total_ms:.2f} ms (branches run concurrently)")
    assert len(tree.edge_latencies_s) == 4
    assert tree.total_s < chain.total_s  # fan-out parallelism
    for latency in tree.edge_latencies_s.values():
        assert 0.1e-3 < latency < 0.5e-3  # Fig. 12 Molecule band
