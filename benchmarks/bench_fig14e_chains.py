"""Figure 14e: chained applications (Alexa, MapReduce).

Paper: with pre-booted instances, Molecule's IPC/nIPC DAG calls cut
Alexa's end-to-end latency 2.04-2.47x and MapReduce's 3.70-4.47x
across CPU, DPU and cross-PU placements (baseline CPU: 38.6ms Alexa,
20.0ms MapReduce).
"""

from repro.analysis import experiments as ex
from repro.analysis.report import format_table


def bench_fig14e_chains(benchmark):
    result = benchmark(ex.fig14e_chains)
    print()
    print(
        format_table(
            ["application", "case", "baseline (ms)", "molecule (ms)", "speedup"],
            [
                (
                    r.application,
                    r.case,
                    f"{r.baseline_ms:.1f}",
                    f"{r.molecule_ms:.1f}",
                    f"{r.speedup:.2f}x",
                )
                for r in result.rows
            ],
        )
    )
    print(result.paper_note)
    for row in result.rows:
        if row.application == "alexa":
            assert 1.7 < row.speedup < 2.6
        else:
            assert 2.7 < row.speedup < 4.7
