"""Figure 14a-d: FunctionBench end-to-end latency.

Paper: Molecule improves cold starts by 1.01x-11.12x on the CPU; BF-1
runs 4-7x slower than the CPU; BF-2 closes most of that gap (3-4x
faster than BF-1); warm boots are equal for both systems.
"""

import pytest

from repro.analysis import experiments as ex
from repro.analysis.report import format_table


def _show(result):
    print()
    print(f"-- FunctionBench: {result.variant} --")
    print(
        format_table(
            ["workload", "baseline (ms)", "molecule (ms)", "speedup", "paper base"],
            [
                (
                    r.workload,
                    f"{r.baseline_ms:.1f}",
                    f"{r.molecule_ms:.1f}",
                    f"{r.speedup:.2f}x",
                    f"{r.paper_baseline_ms:.1f}",
                )
                for r in result.rows
            ],
        )
    )


def bench_fig14a_cold_cpu(benchmark):
    result = benchmark(ex.fig14_functionbench, "cold_cpu")
    _show(result)
    for row in result.rows:
        assert row.baseline_ms == pytest.approx(row.paper_baseline_ms, rel=0.20)
    speedups = [r.speedup for r in result.rows]
    assert min(speedups) >= 1.0 and max(speedups) < 13.0


def bench_fig14b_warm_cpu(benchmark):
    result = benchmark(ex.fig14_functionbench, "warm_cpu")
    _show(result)
    for row in result.rows:
        assert row.speedup == pytest.approx(1.0, abs=0.05)


def bench_fig14c_cold_bf1(benchmark):
    result = benchmark(ex.fig14_functionbench, "cold_bf1")
    _show(result)
    cpu = ex.fig14_functionbench("cold_cpu")
    for row_bf1, row_cpu in zip(result.rows, cpu.rows):
        assert 4.0 <= row_bf1.baseline_ms / row_cpu.baseline_ms <= 7.0


def bench_fig14d_cold_bf2(benchmark):
    result = benchmark(ex.fig14_functionbench, "cold_bf2")
    _show(result)
    bf1 = ex.fig14_functionbench("cold_bf1")
    for row_bf2, row_bf1 in zip(result.rows, bf1.rows):
        assert 3.0 <= row_bf1.baseline_ms / row_bf2.baseline_ms <= 6.0
