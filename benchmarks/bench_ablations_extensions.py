"""Ablations over the extension features: energy efficiency (§6.6's
DPU claim), fork vs snapshot vs cold boot (the Fig. 15 startup axis),
and shim thread-pool queue disciplines (§5)."""

from repro.analysis import ablations
from repro.analysis.report import format_table


def bench_ablation_energy(benchmark):
    rows = benchmark(ablations.energy_ablation)
    print()
    print(
        format_table(
            ["pu", "latency (ms)", "marginal J/request"],
            [(r.pu, f"{r.latency_ms:.1f}", f"{r.marginal_joules:.3f}") for r in rows],
        )
    )
    by_pu = {r.pu: r for r in rows}
    # DPUs run longer but still burn less energy per request (§6.6).
    assert by_pu["dpu-bf1"].latency_ms > by_pu["cpu-xeon"].latency_ms
    assert by_pu["dpu-bf1"].marginal_joules < by_pu["cpu-xeon"].marginal_joules
    assert by_pu["dpu-bf2"].marginal_joules < by_pu["cpu-xeon"].marginal_joules


def bench_ablation_startup_designs(benchmark):
    rows = benchmark(ablations.startup_design_ablation)
    print()
    print(
        format_table(
            ["mechanism", "startup (ms)", "Fig.15 class"],
            [(r.mechanism, f"{r.startup_ms:.1f}", r.design_class) for r in rows],
        )
    )
    by_class = {r.design_class for r in rows}
    assert by_class == {"slow", "fast", "extreme"}
    cfork = next(r for r in rows if "cfork" in r.mechanism)
    assert cfork.design_class == "extreme"


def bench_ablation_shim_threading(benchmark):
    rows = benchmark(ablations.shim_threading_ablation)
    print()
    print(
        format_table(
            ["discipline", "threads", "skewed burst (ms)", "balanced burst (ms)"],
            [
                (r.discipline, r.threads, f"{r.skewed_makespan_ms:.2f}",
                 f"{r.balanced_makespan_ms:.2f}")
                for r in rows
            ],
        )
    )
    static = next(r for r in rows if r.discipline == "mpsc-per-thread")
    stealing = next(r for r in rows if r.discipline == "mpmc-work-stealing")
    # Work stealing fixes the skewed case, matches the balanced one.
    assert stealing.skewed_makespan_ms < static.skewed_makespan_ms / 2
    assert abs(stealing.balanced_makespan_ms - static.balanced_makespan_ms) < 1.0
