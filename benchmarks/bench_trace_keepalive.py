"""Trace-driven keep-alive benchmark (beyond the paper's figures).

Replays an Azure-style skewed invocation trace (Zipf popularity,
inhomogeneous arrivals — the production shape behind the paper's
keep-alive citation [82]) against Molecule and reports warm-hit rate:
the hot head of functions stays resident, the cold tail pays cforks.
"""

import dataclasses

from repro import MoleculeRuntime, PuKind
from repro.analysis.report import format_table
from repro.sim import SeededRng
from repro.workloads import AzureLikeTrace, functionbench


def _run_trace():
    molecule = MoleculeRuntime.create(num_dpus=1)
    base = functionbench.spec("image_resize").to_function()
    names = []
    for index in range(12):
        function = dataclasses.replace(
            base,
            name=f"fn{index}",
            code=dataclasses.replace(base.code, func_id=f"fn{index}"),
        )
        molecule.deploy_now(function)
        names.append(function.name)
    trace = AzureLikeTrace(
        names, peak_rate_per_s=60.0, skew=1.2, rng=SeededRng(21)
    )
    log = []

    def invoke(name):
        return molecule.invoke(name)

    molecule.run(trace.replay(molecule.sim, invoke, duration_s=20.0, trace_log=log))
    molecule.sim.run()
    invoker = molecule.invoker
    total = invoker.cold_invocations + invoker.warm_invocations
    return {
        "requests": len(log),
        "served": total,
        "cold": invoker.cold_invocations,
        "warm": invoker.warm_invocations,
        "hit_rate": invoker.warm_invocations / total if total else 0.0,
        "host_pool_hits": molecule.invoker.pools[0].hits,
    }


def bench_trace_keepalive(benchmark):
    stats = benchmark(_run_trace)
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ("requests replayed", stats["requests"]),
                ("cold starts", stats["cold"]),
                ("warm hits", stats["warm"]),
                ("hit rate", f"{stats['hit_rate']:.1%}"),
            ],
        )
    )
    assert stats["requests"] > 100
    assert stats["served"] == stats["requests"]
    # The Zipf head keeps the pools hot: most requests are warm.
    assert stats["hit_rate"] > 0.7
