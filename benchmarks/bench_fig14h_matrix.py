"""Figure 14h: matrix computation application.

Paper: the FPGA function achieves 2.8x lower latency than the 2.6ms
CPU version.
"""

from repro.analysis import experiments as ex


def bench_fig14h_matrix(benchmark):
    result = benchmark(ex.fig14h_matrix)
    print()
    print(
        f"matrix-comput: cpu {result.cpu_ms[0]:.2f}ms, "
        f"fpga {result.fpga_ms[0]:.2f}ms -> {result.speedup_at(0):.2f}x "
        "(paper: 2.8x of 2.6ms)"
    )
    assert 2.2 < result.speedup_at(0) < 3.2
