"""Figure 13: FPGA function chain end-to-end latency.

Paper: the data-retention (shared-memory) optimisation improves a
five-function FPGA vector chain by ~1.95x over per-hop copying.
"""

from repro.analysis import experiments as ex
from repro.analysis.report import format_table


def bench_fig13_fpga_chain(benchmark):
    result = benchmark(ex.fig13_fpga_chain)
    print()
    print(
        format_table(
            ["chain length", "copying (us)", "shm (us)", "speedup"],
            [
                (n, f"{c:.0f}", f"{s:.0f}", f"{c / s:.2f}x")
                for n, c, s in zip(result.lengths, result.copying_us, result.shm_us)
            ],
        )
    )
    assert 1.5 < result.speedup_at_max < 2.5
