"""Table 1: overall contributions matrix.

Paper: vectorized sandbox and XPU-Shim are supported on CPU, DPU and
FPGA; cfork on CPU/DPU; vectorized-sandbox caching on FPGA; nIPC-DAG
everywhere; DPU<->FPGA communication is CPU-intercepted.
"""

from repro.analysis import experiments as ex
from repro.analysis.report import format_table
from repro.hardware import LinkKind, build_full_machine
from repro.sim import Simulator


def _contributions():
    matrix = ex.table5_generality()
    sim = Simulator()
    machine = build_full_machine(sim, num_dpus=1, num_fpgas=1, num_gpus=0)
    dpu = machine.pu(1)
    fpga = next(p for p in machine.pus.values() if p.name.startswith("fpga"))
    dpu_fpga_route = machine.route(dpu, fpga)
    return matrix, dpu_fpga_route


def bench_table1_contributions(benchmark):
    matrix, route = benchmark(_contributions)
    print()
    print(
        format_table(
            ["pu", "v.sandbox", "xpu-shim", "cfork", "v.s. caching", "nipc dag"],
            [
                (
                    name,
                    row["vectorized_sandbox"],
                    row["xpu_shim"],
                    "yes" if row["cfork"] else "-",
                    "yes" if row["vs_caching"] else "-",
                    "yes" if row["nipc_dag"] else "-",
                )
                for name, row in matrix.items()
            ],
        )
    )
    print(f"DPU<->FPGA: CPU-intercepted via PU {route.intercepted_by} "
          f"({[l.kind.value for l in route.links]})")
    # Every PU implements the two abstractions.
    assert all(row["vectorized_sandbox"] for row in matrix.values())
    assert all(row["xpu_shim"] for row in matrix.values())
    # cfork only on general-purpose PUs; caching only on FPGA.
    assert [r["cfork"] for r in matrix.values()].count(True) >= 2
    assert route.intercepted_by is not None
    assert [l.kind for l in route.links] == [LinkKind.RDMA, LinkKind.DMA]
