"""Figure 10: function startup latency on CPU, DPU and FPGA.

Paper: cfork beats the baseline cold boot by >10x; a cross-PU cfork
adds only 1-3ms; FPGA startup drops from >20s (erase+load+prep) to
3.8s (no-erase), 1.9s (warm image) and 53ms (warm sandbox).
"""

from repro.analysis import experiments as ex
from repro.analysis.report import format_table


def bench_fig10_startup(benchmark):
    result = benchmark(ex.fig10_startup)
    print()
    print(
        format_table(
            ["pu", "language", "baseline (ms)", "cfork-local (ms)", "cfork-XPU (ms)"],
            [
                (
                    r.pu,
                    r.language,
                    f"{r.baseline_local_ms:.1f}",
                    f"{r.cfork_local_ms:.1f}",
                    f"{r.cfork_xpu_ms:.1f}",
                )
                for r in result.rows
            ],
        )
    )
    print()
    print(
        format_table(
            ["fpga configuration", "latency (s)"],
            [(r.configuration, f"{r.seconds:.3f}") for r in result.fpga_rows],
        )
    )
    for row in result.rows:
        assert row.cfork_local_ms < row.baseline_local_ms / 5
        assert 0.5 < row.cfork_xpu_ms - row.cfork_local_ms < 3.5
    assert result.fpga_rows[0].seconds > 20.0
    assert result.fpga_rows[-1].seconds < 0.06
