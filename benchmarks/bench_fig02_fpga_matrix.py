"""Figure 2b: FPGA for better performance.

Paper: matrix scaling (192us CPU), matrix addition (324us) and vector
multiplication (3551us) run 2.15x-2.82x faster as FPGA functions.
"""

from repro.analysis import experiments as ex
from repro.analysis.report import format_table


def bench_fig2b_fpga_matrix(benchmark):
    result = benchmark(ex.fig2b_fpga_matrix)
    print()
    print(
        format_table(
            ["kernel", "cpu (us)", "fpga (us)", "speedup"],
            [
                (r.name, f"{r.cpu_us:.0f}", f"{r.fpga_us:.0f}", f"{r.speedup:.2f}x")
                for r in result.rows
            ],
        )
    )
    low, high = result.paper_speedup
    for row in result.rows:
        assert low - 0.1 <= row.speedup <= high + 0.1
