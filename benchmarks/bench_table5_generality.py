"""Table 5: supporting different PUs (generality, §6.8).

Paper: a new PU needs three pieces — a vectorized sandbox runtime, an
XPU-Shim instance, and a programming model; DPU uses modified runc over
RDMA, FPGA uses runf (OpenCL) over DMA, GPU uses runG (CUDA) over DMA.
"""

from repro.analysis import experiments as ex
from repro.analysis.report import format_table


def bench_table5_generality(benchmark):
    matrix = benchmark(ex.table5_generality)
    print()
    print(
        format_table(
            ["pu", "kind", "v.sandbox", "communication", "programming model"],
            [
                (
                    name,
                    row["kind"],
                    row["vectorized_sandbox"],
                    row["communication"],
                    row["programming_model"],
                )
                for name, row in matrix.items()
            ],
        )
    )
    by_kind = {row["kind"]: row for row in matrix.values()}
    assert by_kind["dpu"]["communication"] == "RDMA"
    assert by_kind["fpga"]["communication"] == "DMA"
    assert by_kind["gpu"]["vectorized_sandbox"].startswith("runG")
    assert by_kind["gpu"]["programming_model"] == "CUDA C++"
