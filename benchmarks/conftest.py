"""Benchmark-suite configuration.

Every module here regenerates one table or figure of the paper.  Run
with ``pytest benchmarks/ --benchmark-only -s`` to see the regenerated
rows/series next to the timing results.
"""
