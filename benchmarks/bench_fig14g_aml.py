"""Figure 14g: Anti-MoneyL FPGA function.

Paper: the FPGA version outperforms the CPU by 4.7x at 6K entries up
to 34.6x at 6M entries.
"""

from repro.analysis import experiments as ex
from repro.analysis.report import format_table


def bench_fig14g_aml(benchmark):
    result = benchmark(ex.fig14g_aml)
    print()
    print(
        format_table(
            ["entries", "cpu (ms)", "fpga (ms)", "speedup"],
            [
                (int(n), f"{cpu:.2f}", f"{fpga:.2f}", f"{cpu / fpga:.1f}x")
                for n, cpu, fpga in zip(result.inputs, result.cpu_ms, result.fpga_ms)
            ],
        )
    )
    speedups = [result.speedup_at(i) for i in range(len(result.inputs))]
    assert speedups == sorted(speedups)
    assert 3.5 < speedups[0] < 6.0
    assert 25.0 < speedups[-1] < 40.0
