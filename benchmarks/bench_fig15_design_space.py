"""Figure 15: serverless system design space.

Paper: Molecule is the only system achieving extreme startup (<=10ms),
IPC-class same-PU communication AND a cross-PU (nIPC) story.
"""

from repro.analysis import experiments as ex
from repro.analysis.report import format_table


def bench_fig15_design_space(benchmark):
    points = benchmark(ex.fig15_design_space)
    print()
    print(
        format_table(
            ["system", "startup", "same-PU comm", "cross-PU comm"],
            [
                (p.system, p.startup_class, p.same_pu_comm, p.cross_pu_comm)
                for p in points
            ],
        )
    )
    molecule = next(p for p in points if p.system == "molecule")
    assert molecule.startup_class == "extreme"
    assert molecule.same_pu_comm == "ipc"
    assert sum(1 for p in points if p.cross_pu_comm == "nipc") == 1
