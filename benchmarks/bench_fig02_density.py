"""Figure 2a: DPU for higher function density.

Paper: 1000 concurrent instances on the CPU, 1256 with one Bluefield
DPU, 1512 with two.
"""

from repro.analysis import experiments as ex
from repro.analysis.report import format_table


def bench_fig2a_density(benchmark):
    result = benchmark(ex.fig2a_density)
    print()
    print(
        format_table(
            ["configuration", "measured", "paper"],
            [
                (label, result.measured[label], result.paper[label])
                for label in ("CPU", "+1 DPU", "+2 DPU")
            ],
        )
    )
    assert result.measured == result.paper
