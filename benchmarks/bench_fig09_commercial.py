"""Figure 9: comparison with commercial serverless systems.

Paper: Molecule starts functions 37-46x faster and communicates
68-300x faster than OpenWhisk / AWS Lambda; even Molecule-homo is
5-6x / 4-19x better.
"""

from repro.analysis import experiments as ex
from repro.analysis.report import format_table


def bench_fig9_commercial(benchmark):
    result = benchmark(ex.fig9_commercial)
    print()
    print(
        format_table(
            ["system", "startup (ms)", "comm (ms)"],
            [
                (r.system, f"{r.startup_ms:.2f}", f"{r.comm_ms:.3f}")
                for r in result.rows
            ],
        )
    )
    print(result.paper_note)
    mol = result.row("molecule")
    assert result.row("openwhisk").startup_ms / mol.startup_ms > 30
    assert result.row("aws-lambda").comm_ms / mol.comm_ms > 200
