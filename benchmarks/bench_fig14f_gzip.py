"""Figure 14f: GZip FPGA functions.

Paper: FPGA-accelerated GZip significantly outperforms the CPU version
above ~25MB, by 4.8-8.3x at large file sizes.
"""

from repro.analysis import experiments as ex
from repro.analysis.report import format_table


def bench_fig14f_gzip(benchmark):
    result = benchmark(ex.fig14f_gzip)
    print()
    print(
        format_table(
            ["file (MB)", "cpu (ms)", "fpga (ms)", "winner"],
            [
                (
                    size,
                    f"{cpu:.1f}",
                    f"{fpga:.1f}",
                    "fpga" if fpga < cpu else "cpu",
                )
                for size, cpu, fpga in zip(result.inputs, result.cpu_ms, result.fpga_ms)
            ],
        )
    )
    print(f"crossover: ~{result.crossover_input}MB (paper: ~25MB); "
          f"speedup at 112MB: {result.speedup_at(-1):.1f}x (paper: up to 8.3x)")
    assert result.crossover_input is not None
    assert 10.0 <= result.crossover_input <= 30.0
    assert 4.0 < result.speedup_at(-1) < 9.0
